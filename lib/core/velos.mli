(** Velos-style one-sided Paxos (cf. arXiv:2106.08676): passive memory
    replicas, leader commits by batched one-sided writes carrying a
    commit watermark, followers learn by polling a quorum of memories,
    failover swaps write permission and reconstructs state from replica
    memory, and leader leases on virtual time make a leased
    linearizable read cost {e zero} memory operations.

    See the implementation header for the watermark and lease safety
    arguments; DESIGN.md §14 has the engine-level comparison with the
    PMP log. *)

open Rdma_mm
open Rdma_mem

val region : string

val entry_reg : int -> string

(** Commit watermark register: the highest index whose entry write was
    all-acked by a write quorum before the watermark was published.  A
    fence precedes every watermark write, so any memory with watermark
    [w] applied also applied entries [1..w] — a follower can adopt one
    reply wholesale. *)
val commit_reg : string

val ckpt_reg : string

(** Lease register: [(term, expiry)] on the shared virtual clock.
    Doubles as the permission-protected reign proof. *)
val lease_reg : string

type config = {
  replicas : int;  (** replicas are processes [0 .. replicas-1] *)
  max_entries : int;
  f_m : int option;
  max_terms : int;
  serve_until : float;
  checkpoint_every : int;  (** [0] disables checkpointing *)
  poll_every : float;
      (** follower poll interval — the passive-learning cadence *)
  lease_duration : float;
      (** [> 0.]: reads under a valid quorum-acked lease cost 0 memory
          ops; [0.] disables leases (every read pays a quorum round) *)
  lease_violation : bool;
      (** TEST FIXTURE ONLY: keep serving local reads after deposition
          — the stale-lease bug the chaos oracle must catch *)
}

val default_config : config

val encode_entry : term:int -> cmd:string -> string

val decode_entry : string -> (int * string) option

val encode_cmd_meta : client:int -> seq:int -> cmd:string -> string

val decode_cmd_meta : string -> (int * int * string) option

val encode_ckpt : up_to:int -> entries:string list -> string

val decode_ckpt : string -> (int * string list) option

val encode_lease : term:int -> until:float -> string

val decode_lease : string -> (int * float) option

(** Client messages only: there is no replica-to-replica traffic — the
    one-sided point of the protocol. *)
type msg =
  | Request of { client : int; seq : int; cmd : string }
  | Ack of { client : int; seq : int; index : int }
  | Read_request of { client : int; seq : int }
  | Read_reply of { client : int; seq : int; up_to : int }

val encode_msg : msg -> string

val decode_msg : string -> msg option

(** Only replicas may take the region's exclusive write permission. *)
val legal_change : config -> Permission.legal_change

val setup_regions : 'm Cluster.t -> config -> unit

type replica

(** Applied entries, oldest first, as [(index, command)]. *)
val applied_entries : replica -> (int * string) list

val applied_count : replica -> int

(** The term of the replica's current (or last) reign; [0] before any. *)
val current_term : replica -> int

(** Commit-stream notification, fired for every applied entry; [f] must
    not suspend. *)
val on_commit : replica -> (index:int -> cmd:string -> unit) -> unit

(** Recovery notification: fired once a reign's recovery (permission
    swap + state reconstruction + rewrite + lease wait) completed; [f]
    must not suspend. *)
val on_recover : replica -> (term:int -> unit) -> unit

val spawn_replica : string Cluster.t -> ?cfg:config -> pid:int -> unit -> replica

val stop : replica -> unit

(** Submit a command from a client process (pid ≥ replicas): sends to
    the Ω leader, awaits the ack, retries on timeout.  Returns the
    committed index, or [None] if [timeout] elapsed. *)
val submit :
  string Cluster.ctx -> cfg:config -> seq:int -> cmd:string -> timeout:float -> int option
[@@sim.yields]

(** Linearizable read: a leader holding a valid lease answers from
    local state with 0 memory ops (profiled under the
    ["velos.read.leased"] scope); otherwise it refreshes the lease with
    one quorum-acked write first.  Returns the applied index, or
    [None] on timeout. *)
val linearizable_read :
  string Cluster.ctx -> cfg:config -> seq:int -> timeout:float -> int option
[@@sim.yields]
