(** Declarative fault schedules covering the model's failure and
    asynchrony knobs (Section 3). *)

open Rdma_mm

type t =
  | Crash_process of { pid : int; at : float }
  | Crash_memory of { mid : int; at : float }
  | Set_leader of { pid : int; at : float }
  | Async_until of { gst : float; extra : float }
  | Random_latency of { min : float; max : float }
      (** per-message latency in [[min, max)]: messages may overtake each
          other (links are not FIFO) *)
  | Crash_machine of { pid : int; mid : int; at : float }
      (** a full-system crash (Section 7): the process and its co-located
          memory fail at the same instant *)
  | Partition of { pairs : (int * int) list; at : float }
      (** sever the ordered pairs at time [at]; messages across severed
          links are buffered (links are no-loss), never dropped *)
  | Heal of { at : float }
      (** clear all severed pairs at [at] and flush buffered messages *)
  | Recover_memory of { mid : int; at : float }
      (** bring a crashed memory back EMPTY under a fresh epoch (the
          rejoin protocol re-establishes permissions before it serves);
          a benign no-op when the memory is not crashed at [at] *)
  | Restart_machine of { pid : int; mid : int; at : float }
      (** restart a full machine: the memory rejoins empty and the
          process re-runs its program from the top *)
  | Set_ordering of { mode : Rdma_mem.Ordering.mode }
      (** install a weak memory-ordering model on every memory at
          schedule-install time; per-op lag/reorder decisions come from
          the run's seed, so replay and shrinking reproduce them *)

(** Schedule the faults on the cluster.  Raises [Invalid_argument] if a
    fault targets a pid or mid outside the cluster — a typo'd target
    would otherwise silently test nothing. *)
val apply : 'm Cluster.t -> t list -> unit

val pp : Format.formatter -> t -> unit
