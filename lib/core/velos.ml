(* Velos-style one-sided Paxos (cf. "Velos: One-sided Paxos for RDMA
   applications", arXiv:2106.08676) — the opposite corner of the design
   space from the Protected Memory Paxos log in lib/smr:

   - Replicas are PASSIVE: followers never receive a Commit message.
     The leader replicates by one-sided writes into a region on every
     memory; followers learn committed entries by polling a QUORUM of
     memories and trusting the commit watermark (below).

   - An append is ONE batched write per memory carrying the new entry
     AND the watermark covering the previous one, so in steady state
     commitment costs the same two delays as PMP but followers need no
     network traffic at all to stay current.

   - Failover swaps the exclusive write permission (the paper's
     permission discipline, reused as Velos's "ownership change") and
     reconstructs the leader state entirely from replica memory.

   - Leader LEASES on virtual time: a leader holding a quorum-acked
     lease serves linearizable reads from local state with ZERO memory
     operations (asserted via the [mem.ops.issued] perf counter).  A
     new leader waits out the maximum lease expiry it read before
     serving anything, so a deposed-but-leased leader can never answer
     a read that misses a newer committed write.

   Commit watermark safety.  The leader only publishes [commit = w]
   after entry w was all-acked by a write quorum, and a fence is issued
   to every memory between consecutive batches.  Hence per memory: if
   [commit = w] (written by leader L) is APPLIED there, every one of
   L's entry writes 1..w is applied there too — under Strict trivially
   (QP FIFO), under Completion_lag/Reorder_qp because the fence is an
   ordering barrier in the QP stream whether or not anyone awaits it.
   A follower therefore adopts the reply with the HIGHEST watermark and
   applies that same reply's entries up to it; committed slots carry
   the same command in every term (recovery adopts the committed
   prefix), so the stored values are safe regardless of which leader's
   rewrite is visible.

   Lease safety on virtual time.  There is one global virtual clock, so
   "holder's expiry" and "successor's wait" are the same timeline — the
   skew term of the real-world argument vanishes.  A lease counts only
   once its write is all-acked by a quorum; its stored expiry equals
   the holder's local [leased_until]; a successor's recovery starts by
   swapping permissions, which drains in-flight writes at each memory
   before its reads, so the successor's quorum read intersects every
   lease quorum and the max expiry it sees bounds every valid lease. *)

open Rdma_sim
open Rdma_mem
open Rdma_net
open Rdma_mm
open Rdma_obs

let region = "velos"

let entry_reg i = Printf.sprintf "e.%d" i

(* The commit watermark: highest index the current leader has seen
   all-acked by a write quorum.  Monotone per reign; across reigns a
   new leader republishes [max] of what it read (see recovery). *)
let commit_reg = "commit"

(* The checkpoint register — same contract as the PMP log: written only
   after the covered entries committed, so adopting the max seen from
   any single replica is safe, and the log below it may be truncated. *)
let ckpt_reg = "ckpt"

(* The lease register: [term] and the virtual-time expiry the holder
   promised itself.  Doubles as the permission-protected reign proof
   for quorum reads and state transfers (a nak = deposed). *)
let lease_reg = "lease"

type config = {
  replicas : int; (* replicas are processes 0 .. replicas-1 *)
  max_entries : int;
  f_m : int option;
  max_terms : int;
  serve_until : float;
  checkpoint_every : int; (* 0 disables checkpointing *)
  poll_every : float; (* follower poll interval (passive learning) *)
  lease_duration : float;
      (* > 0.: reads under a valid quorum-acked lease cost 0 memory
         ops; 0. disables leases — every read pays a quorum round *)
  lease_violation : bool;
      (* TEST FIXTURE ONLY: keep serving local reads after deposition —
         the stale-lease bug the chaos oracle must catch *)
}

let default_config =
  {
    replicas = 3;
    max_entries = 64;
    f_m = None;
    max_terms = 32;
    serve_until = 2000.0;
    checkpoint_every = 0;
    poll_every = 5.0;
    lease_duration = 0.0;
    lease_violation = false;
  }

(* {2 Codecs} *)

let encode_entry ~term ~cmd = Codec.join2 (Codec.int_field term) cmd

let decode_entry s =
  match Codec.split2 s with
  | None -> None
  | Some (tf, cmd) -> Option.map (fun term -> (term, cmd)) (Codec.int_of_field tf)

let encode_cmd_meta ~client ~seq ~cmd =
  Codec.join3 (Codec.int_field client) (Codec.int_field seq) cmd

let decode_cmd_meta s =
  match Codec.split3 s with
  | None -> None
  | Some (cf, qf, cmd) -> (
      match (Codec.int_of_field cf, Codec.int_of_field qf) with
      | Some client, Some seq -> Some (client, seq, cmd)
      | _ -> None)

let encode_ckpt ~up_to ~entries = Codec.join (Codec.int_field up_to :: entries)

let decode_ckpt s =
  match Codec.split s with
  | up :: entries ->
      Option.map (fun up_to -> (up_to, entries)) (Codec.int_of_field up)
  | [] -> None

(* Virtual times are floats; "%h" is exact and round-trips. *)
let float_field f = Printf.sprintf "%h" f

let float_of_field s = float_of_string_opt s

let encode_lease ~term ~until = Codec.join2 (Codec.int_field term) (float_field until)

let decode_lease s =
  match Codec.split2 s with
  | None -> None
  | Some (tf, uf) -> (
      match (Codec.int_of_field tf, float_of_field uf) with
      | Some term, Some until -> Some (term, until)
      | _ -> None)

(* Client messages only — there is no replica-to-replica traffic at all
   (followers learn from memory, not from the leader). *)
type msg =
  | Request of { client : int; seq : int; cmd : string }
  | Ack of { client : int; seq : int; index : int }
  | Read_request of { client : int; seq : int }
  | Read_reply of { client : int; seq : int; up_to : int }

let encode_msg = function
  | Request { client; seq; cmd } ->
      Codec.join [ "req"; Codec.int_field client; Codec.int_field seq; cmd ]
  | Ack { client; seq; index } ->
      Codec.join
        [ "ack"; Codec.int_field client; Codec.int_field seq; Codec.int_field index ]
  | Read_request { client; seq } ->
      Codec.join [ "rdq"; Codec.int_field client; Codec.int_field seq ]
  | Read_reply { client; seq; up_to } ->
      Codec.join
        [ "rdr"; Codec.int_field client; Codec.int_field seq; Codec.int_field up_to ]

let decode_msg s =
  match Codec.split s with
  | [ "req"; c; q; cmd ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q) with
      | Some client, Some seq -> Some (Request { client; seq; cmd })
      | _ -> None)
  | [ "ack"; c; q; i ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q, Codec.int_of_field i) with
      | Some client, Some seq, Some index -> Some (Ack { client; seq; index })
      | _ -> None)
  | [ "rdq"; c; q ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q) with
      | Some client, Some seq -> Some (Read_request { client; seq })
      | _ -> None)
  | [ "rdr"; c; q; u ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q, Codec.int_of_field u) with
      | Some client, Some seq, Some up_to ->
          Some (Read_reply { client; seq; up_to })
      | _ -> None)
  | _ -> None

let legal_change cfg : Permission.legal_change =
 fun ~pid ~region:r ~current:_ ~requested ->
  r = region && pid < cfg.replicas && Permission.sole_writer requested = Some pid

let setup_regions cluster cfg =
  let n = Cluster.n cluster in
  Cluster.add_region_everywhere cluster ~name:region
    ~perm:(Permission.exclusive_writer ~writer:0 ~n)
    ~registers:
      (ckpt_reg :: commit_reg :: lease_reg
      :: List.init cfg.max_entries (fun i -> entry_reg (i + 1)))

type replica = {
  pid : int;
  cfg : config;
  applied : (int * string) Queue.t; (* (index, cmd) in application order *)
  mutable applied_up_to : int;
  mutable current_term : int;
  mutable stopped : bool;
  mutable subscribed : bool; (* telemetry subscription installed once *)
  mutable zombie : bool; (* lease_violation: stale server already spawned *)
  requests : (int * int * string) Mailbox.t; (* client, seq, cmd *)
  reads : (int * int) Mailbox.t; (* client, seq *)
  rejoin : int Mailbox.t; (* restarted memories awaiting state transfer *)
  mutable commit_subs : (index:int -> cmd:string -> unit) list;
  mutable recover_subs : (term:int -> unit) list;
}

let applied_entries r =
  Queue.fold (fun acc e -> e :: acc) [] r.applied |> List.rev

let applied_count r = r.applied_up_to

let current_term r = r.current_term

let on_commit r f = r.commit_subs <- f :: r.commit_subs

let on_recover r f = r.recover_subs <- f :: r.recover_subs

let apply_entry r ~index ~cmd =
  if index = r.applied_up_to + 1 then begin
    Queue.push (index, cmd) r.applied;
    r.applied_up_to <- index;
    List.iter (fun f -> f ~index ~cmd) r.commit_subs
  end

let quorum_of (ctx : _ Cluster.ctx) cfg =
  let m = ctx.Cluster.cluster_m in
  let f_m = match cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  m - f_m

(* Apply a stored entry string (committed, so metadata is trusted). *)
let apply_stored r ~index stored =
  let cmd =
    match decode_cmd_meta stored with Some (_, _, cmd) -> cmd | None -> stored
  in
  apply_entry r ~index ~cmd

(* {2 The passive learner}

   Every replica polls a quorum of memories for the checkpoint, the
   commit watermark and a window of entries above its applied index.
   It adopts the reply carrying the HIGHEST watermark: by the fence
   discipline (header comment) that same memory has applied every
   committed entry the watermark covers, so no cross-reply merge is
   needed — one-sided learning from a single coherent snapshot. *)
let poll_window = 8

let poll_once (ctx : _ Cluster.ctx) r =
  let cfg = r.cfg in
  let quorum = quorum_of ctx cfg in
  let base = r.applied_up_to in
  let width = min poll_window (cfg.max_entries - base) in
  let regs =
    ckpt_reg :: commit_reg
    :: List.init width (fun i -> entry_reg (base + i + 1))
  in
  let client = ctx.Cluster.client in
  let reads =
    Array.init ctx.Cluster.cluster_m (fun i ->
        Memory.read_many_async (Memclient.mem client i) ~from:r.pid ~region ~regs)
  in
  let completed = Par.await_k_timeout reads quorum (2.0 *. cfg.poll_every) in
  let ok =
    List.filter_map
      (fun (i, v) ->
        match v with
        | Memory.Read_many values -> Some (i, values)
        | Memory.Read_many_nak -> None)
      completed
  in
  (* A nak'd chain (restarted memory) does not count towards the read
     quorum: the watermark argument needs a true quorum so it is
     guaranteed to intersect every write quorum. *)
  if List.length ok >= quorum then begin
    let watermark values =
      match Array.length values with
      | 0 | 1 -> 0
      | _ -> (
          match Option.bind values.(1) Codec.int_of_field with
          | Some w -> w
          | None -> 0)
    in
    (* Deterministic best pick: highest watermark, lowest memory id. *)
    let best =
      List.fold_left
        (fun acc (i, values) ->
          let w = watermark values in
          match acc with
          | Some (_, bw, bi) when bw > w || (bw = w && bi < i) -> acc
          | _ -> Some (values, w, i))
        None ok
    in
    match best with
    | None -> ()
    | Some (values, w, _) ->
        (* Checkpoint first: it may cover truncated entries below the
           window. *)
        (match Option.bind values.(0) decode_ckpt with
        | Some (up_to, entries) when up_to > r.applied_up_to ->
            List.iteri
              (fun i stored ->
                let index = i + 1 in
                if index > r.applied_up_to && index <= up_to then
                  apply_stored r ~index stored)
              entries
        | _ -> ());
        (* Then the window from the same reply, up to its watermark. *)
        for j = 2 to Array.length values - 1 do
          let index = base + j - 1 in
          if index <= w && index = r.applied_up_to + 1 then
            match Option.bind values.(j) decode_entry with
            | Some (_, stored) -> apply_stored r ~index stored
            | None -> ()
        done
  end

let poll_loop (ctx : _ Cluster.ctx) r =
  while
    (not r.stopped) && Engine.now ctx.Cluster.ctx_engine < r.cfg.serve_until
  do
    Engine.sleep r.cfg.poll_every;
    (* The leader is the writer: it learns at append time and must not
       race its own in-flight rewrites with reads. *)
    if
      (not r.stopped)
      && Omega.leader ctx.Cluster.ctx_omega <> r.pid
      && Engine.now ctx.Cluster.ctx_engine < r.cfg.serve_until
    then poll_once ctx r
  done

(* {2 Leader side} *)

(* State transfer to a restarted memory — the PMP repair discipline on
   the velos region: permission-grab, then one batched write of the
   leader's full view (checkpoint, watermark, lease, entries), masked
   to registers still stale since the restart. *)
let spawn_repair (ctx : _ Cluster.ctx) r ~term ~until ~up_to ~entries ~tail
    ~committed mid =
  ctx.Cluster.spawn_sub
    (Printf.sprintf "velos.repair%d" mid)
    (fun () ->
      let client = ctx.Cluster.client in
      let n = ctx.Cluster.cluster_n in
      let (_ : Memory.op_result) =
        Memclient.change_permission client ~mem:mid ~region
          ~perm:(Permission.exclusive_writer ~writer:r.pid ~n)
      in
      let tail_tbl = Hashtbl.create 16 in
      List.iter (fun (i, stored) -> Hashtbl.replace tail_tbl i stored) tail;
      let slot i =
        ( entry_reg i,
          if i <= up_to then None
          else
            Option.map
              (fun stored -> encode_entry ~term ~cmd:stored)
              (Hashtbl.find_opt tail_tbl i) )
      in
      let values =
        (ckpt_reg, if up_to = 0 then None else Some (encode_ckpt ~up_to ~entries))
        :: (commit_reg, Some (Codec.int_field committed))
        :: (lease_reg, Some (encode_lease ~term ~until))
        :: List.init r.cfg.max_entries (fun i -> slot (i + 1))
      in
      let stale = Memory.stale_registers (Memclient.mem client mid) ~region in
      let values = List.filter (fun (reg, _) -> List.mem reg stale) values in
      if values <> [] then
        match Memclient.write_many client ~mem:mid ~region ~values with
        | Memory.Ack ->
            Stats.bump ctx.Cluster.ctx_stats "velos.repairs";
            Obs.event ctx.Cluster.ctx_obs ~actor:(Printf.sprintf "p%d" r.pid)
              (Event.Custom
                 { name = "velos.repair"; detail = Printf.sprintf "mu%d" mid })
        | Memory.Nak -> ())
[@@simlint.allow
  "F1 repair bookkeeping: the Ack branch only counts the repair in \
   telemetry; the transferred state is validated by the next leader \
   recovery's reads, which run under a fresh permission grab that \
   drains this write"]

(* All-ack of a quorum of completions — the velos commit predicate for
   one-sided writes.  Branching on completion (rather than application)
   is safe here for the same structural reason as in the PMP log: a
   successor's recovery begins with a permission swap on every memory,
   which drains acked-but-unapplied writes before its reads.  The F1
   suppressions live at the call sites that branch on this result. *)
let all_acked writes quorum =
  let completed = Par.await_k writes quorum in
  List.for_all (fun (_, w) -> w = Memory.Ack) completed

(* Leader recovery: swap permissions everywhere, read a quorum of full
   region replicas, adopt max checkpoint + max watermark + max-term
   values per slot, rewrite the dense prefix under our own term,
   republish the watermark, and wait out the maximum lease expiry seen
   before serving ANYTHING (reads or appends).  Returns the adopted
   prefix (stored strings) and checkpoint base, or None if deposed. *)
let recover (ctx : _ Cluster.ctx) r ~term =
  let cfg = r.cfg in
  let m = ctx.Cluster.cluster_m in
  let quorum = quorum_of ctx cfg in
  let n = ctx.Cluster.cluster_n in
  let client = ctx.Cluster.client in
  let regs =
    ckpt_reg :: commit_reg :: lease_reg
    :: List.init cfg.max_entries (fun i -> entry_reg (i + 1))
  in
  let chains = Array.init m (fun _ -> Ivar.create ()) in
  for i = 0 to m - 1 do
    ctx.Cluster.spawn_sub
      (Printf.sprintf "velos.recover%d" i)
      (fun () ->
        let (_ : Memory.op_result) =
          Memclient.change_permission client ~mem:i ~region
            ~perm:(Permission.exclusive_writer ~writer:r.pid ~n)
        in
        match
          Ivar.await
            (Memory.read_many_async (Memclient.mem client i) ~from:r.pid ~region
               ~regs)
        with
        | Memory.Read_many values -> Ivar.fill chains.(i) (Some values)
        | Memory.Read_many_nak -> Ivar.fill chains.(i) None)
  done;
  (* Gather a quorum of successful chains, tolerating naks (restarted
     memories answer "I don't know"); give up once even all-but-failed
     cannot reach a quorum. *)
  let rec gather k =
    if k > m then None
    else begin
      let completed = Par.await_k chains k in
      let failed =
        List.filter_map (fun (i, v) -> if v = None then Some i else None) completed
      in
      let ok =
        List.filter_map (fun (i, v) -> Option.map (fun vs -> (i, vs)) v) completed
      in
      if List.length ok >= quorum then Some (ok, failed)
      else gather (quorum + List.length failed)
    end
  in
  match gather quorum with
  | None -> None
  | Some (ok, failed) ->
      (* Adopt max checkpoint, max watermark, max lease expiry. *)
      let base = ref 0 in
      let base_entries = ref [] in
      let floor = ref 0 in
      let lease_until = ref 0.0 in
      List.iter
        (fun (_, values) ->
          if Array.length values >= 3 then begin
            (match Option.bind values.(0) decode_ckpt with
            | Some (up_to, entries) when up_to > !base ->
                base := up_to;
                base_entries := entries
            | _ -> ());
            (match Option.bind values.(1) Codec.int_of_field with
            | Some w when w > !floor -> floor := w
            | _ -> ());
            match Option.bind values.(2) decode_lease with
            | Some (_, until) when until > !lease_until -> lease_until := until
            | _ -> ()
          end)
        ok;
      let base = !base in
      (* Per-slot max-term adoption above the checkpoint. *)
      let adopted = Array.make cfg.max_entries None in
      List.iter
        (fun (_, values) ->
          Array.iteri
            (fun j v ->
              if j > 2 then begin
                let idx = j - 3 in
                if idx >= base then
                  match Option.bind v decode_entry with
                  | None -> ()
                  | Some (t, stored) -> (
                      match adopted.(idx) with
                      | Some (t0, _) when t0 >= t -> ()
                      | _ -> adopted.(idx) <- Some (t, stored))
              end)
            values)
        ok;
      let tail = ref [] in
      (try
         for idx = base to cfg.max_entries - 1 do
           match adopted.(idx) with
           | Some (_, stored) -> tail := (idx + 1, stored) :: !tail
           | None -> raise Exit
         done
       with Exit -> ());
      let tail = List.rev !tail in
      let prefix_len = base + List.length tail in
      (* The adopted dense prefix must cover the adopted watermark: the
         read quorum intersects the write quorum of every committed
         entry, so this only fails if the region was corrupted. *)
      let deposed = ref (prefix_len < !floor) in
      if base > 0 && not !deposed then begin
        let writes =
          Memclient.write_all_async client ~region ~reg:ckpt_reg
            (encode_ckpt ~up_to:base ~entries:!base_entries)
        in
        if not (all_acked writes quorum) then deposed := true
      end;
      List.iter
        (fun (index, stored) ->
          if not !deposed then begin
            let writes =
              Memclient.write_all_async client ~region ~reg:(entry_reg index)
                (encode_entry ~term ~cmd:stored)
            in
            if not (all_acked writes quorum) then deposed := true
          end)
        tail;
      if !deposed then None
      else begin
        (* Everything rewritten all-ack under our term is decided:
           republish the watermark over the whole dense prefix.  The
           fence orders the watermark after the rewrites in every QP
           stream (a no-op under Strict). *)
        ignore (Memclient.fence_all_async client : Memory.op_result Ivar.t array);
        let writes =
          Memclient.write_all_async client ~region ~reg:commit_reg
            (Codec.int_field prefix_len)
        in
        if
          (not (all_acked writes quorum))
          [@simlint.allow
            "F1 watermark republish commit point: an acked write may lag \
             its application, but every reader that could contradict it \
             (follower poll, successor recovery) reads either behind the \
             fenced watermark or after a permission swap that drains this \
             QP"]
        then None
        else begin
          (* Wait out every lease that could still be valid BEFORE
             serving reads or acking appends: on the shared virtual
             clock this closes the stale-read window exactly. *)
          let now = Engine.now ctx.Cluster.ctx_engine in
          if !lease_until > now then begin
            Stats.bump ctx.Cluster.ctx_stats "velos.lease.waits";
            Engine.sleep (!lease_until -. now)
          end;
          List.iter
            (fun mid ->
              spawn_repair ctx r ~term ~until:!lease_until ~up_to:base
                ~entries:!base_entries ~tail ~committed:prefix_len mid)
            failed;
          let prefix =
            List.mapi (fun i stored -> (i + 1, stored)) !base_entries @ tail
          in
          Some (prefix, base)
        end
      end

let leader_loop (ctx : _ Cluster.ctx) r =
  let ep = ctx.Cluster.ep in
  let client = ctx.Cluster.client in
  let m = ctx.Cluster.cluster_m in
  let terms = ref 0 in
  let continue = ref true in
  while !continue && not r.stopped do
    Omega.wait_until_leader ctx.Cluster.ctx_omega ~me:r.pid;
    if r.stopped || Engine.now ctx.Cluster.ctx_engine >= r.cfg.serve_until then
      continue := false
    else begin
      incr terms;
      if !terms > r.cfg.max_terms then continue := false
      else begin
        let term = (!terms * r.cfg.replicas) + r.pid + 1 in
        r.current_term <- term;
        let quorum = quorum_of ctx r.cfg in
        (* First reign of the initial leader at t=0: permissions are at
           their creation values and the region is empty — skip
           recovery. *)
        let recovered =
          if r.pid = 0 && !terms = 1 && Engine.now ctx.Cluster.ctx_engine = 0.0
          then Some ([], 0)
          else recover ctx r ~term
        in
        match recovered with
        | None -> () (* deposed during recovery; wait for Ω again *)
        | Some (prefix, ckpt_base) ->
            List.iter (fun f -> f ~term) r.recover_subs;
            (* Rebuild duplicate suppression + the stored log, and apply
               the recovered prefix locally. *)
            let dedup = Hashtbl.create 32 in
            let stored = Hashtbl.create 64 in
            let ckpt_up_to = ref ckpt_base in
            List.iter
              (fun (index, stored_v) ->
                Hashtbl.replace stored index stored_v;
                (match decode_cmd_meta stored_v with
                | Some (client_pid, seq, _) ->
                    Hashtbl.replace dedup (client_pid, seq) index
                | None -> ());
                apply_stored r ~index stored_v)
              prefix;
            let next = ref (List.length prefix + 1) in
            (* Watermark already published by recovery (or 0 at t=0). *)
            let published = ref (List.length prefix) in
            let leased_until = ref 0.0 in
            let deposed = ref false in
            (* Quorum-acked lease refresh; with lease_duration = 0. it
               degenerates into the reign proof every read pays. *)
            let refresh_lease () =
              let until =
                Engine.now ctx.Cluster.ctx_engine +. r.cfg.lease_duration
              in
              let writes =
                Memclient.write_all_async client ~region ~reg:lease_reg
                  (encode_lease ~term ~until)
              in
              if all_acked writes quorum then begin
                leased_until := until;
                true
              end
              else begin
                deposed := true;
                false
              end
            in
            (* Establish the lease before the first read can arrive, so
               a leased reign never pays a per-read round at all. *)
            if r.cfg.lease_duration > 0.0 then ignore (refresh_lease ());
            let publish_watermark w =
              ignore
                (Memclient.fence_all_async client : Memory.op_result Ivar.t array);
              let writes =
                Memclient.write_all_async client ~region ~reg:commit_reg
                  (Codec.int_field w)
              in
              if all_acked writes quorum then published := w else deposed := true
            in
            let maybe_checkpoint () =
              if
                r.cfg.checkpoint_every > 0
                && !next - 1 >= !ckpt_up_to + r.cfg.checkpoint_every
              then begin
                let up_to = !next - 1 in
                if !published < up_to then publish_watermark up_to;
                if not !deposed then begin
                  let entries =
                    List.init up_to (fun i -> Hashtbl.find stored (i + 1))
                  in
                  let writes =
                    Memclient.write_all_async client ~region ~reg:ckpt_reg
                      (encode_ckpt ~up_to ~entries)
                  in
                  if all_acked writes quorum then begin
                    let nones =
                      List.init up_to (fun i -> (entry_reg (i + 1), None))
                    in
                    let truncs =
                      Array.init m (fun i ->
                          Memory.write_many_async (Memclient.mem client i)
                            ~from:r.pid ~region ~values:nones)
                    in
                    ignore (Par.await_k truncs quorum);
                    ckpt_up_to := up_to;
                    Stats.bump ctx.Cluster.ctx_stats "velos.checkpoints"
                  end
                  else deposed := true
                end
              end
            in
            let serve_rejoins () =
              match Mailbox.drain r.rejoin with
              | [] -> ()
              | mids ->
                  (* Reign proof before a state transfer (all-ack means
                     we still hold the permission on a quorum).  On a
                     nak the nak may be the restarted memory itself, not
                     a rival — requeue the mids so the next reign (ours
                     or a rival's) still serves the transfer. *)
                  if not (refresh_lease ()) then
                    List.iter (Mailbox.send r.rejoin) mids
                  else begin
                    let entries =
                      List.init !ckpt_up_to (fun i -> Hashtbl.find stored (i + 1))
                    in
                    let tail =
                      List.init
                        (!next - 1 - !ckpt_up_to)
                        (fun i ->
                          let index = !ckpt_up_to + i + 1 in
                          (index, Hashtbl.find stored index))
                    in
                    List.iter
                      (fun mid ->
                        spawn_repair ctx r ~term ~until:!leased_until
                          ~up_to:!ckpt_up_to ~entries ~tail ~committed:(!next - 1)
                          mid)
                      (List.sort_uniq compare mids)
                  end
            in
            let reply_read (client_pid, seq) =
              Network.send ep ~dst:client_pid
                (encode_msg
                   (Read_reply { client = client_pid; seq; up_to = r.applied_up_to }))
            in
            let serve_reads () =
              match Mailbox.drain r.reads with
              | [] -> ()
              | readers ->
                  if r.cfg.lease_violation then begin
                    (* TEST FIXTURE: skip every validity check. *)
                    Stats.bump ctx.Cluster.ctx_stats "velos.reads.stale";
                    List.iter reply_read readers
                  end
                  else if
                    r.cfg.lease_duration > 0.0
                    && Engine.now ctx.Cluster.ctx_engine < !leased_until
                  then
                    (* The headline path: a leased read is served from
                       local state with ZERO memory operations.  The
                       explicit 0-bump pins the counter row in the
                       deterministic perf plane so the baseline gate
                       would catch any op leaking into this scope. *)
                    Prof.scope "velos.read.leased" (fun () ->
                        Prof.bump "mem.ops.issued" 0;
                        Prof.bump "smr.reads.leased" (List.length readers);
                        Stats.bump ctx.Cluster.ctx_stats "velos.reads.leased";
                        List.iter reply_read readers)
                  else
                    Prof.scope "velos.read.quorum" (fun () ->
                        Stats.bump ctx.Cluster.ctx_stats "velos.reads.quorum";
                        if refresh_lease () then List.iter reply_read readers)
            in
            let append (client_pid, seq, cmd) =
              match Hashtbl.find_opt dedup (client_pid, seq) with
              | Some index ->
                  Network.send ep ~dst:client_pid
                    (encode_msg (Ack { client = client_pid; seq; index }))
              | None ->
                  if !next > r.cfg.max_entries then deposed := true
                  else begin
                    let index = !next in
                    let meta = encode_cmd_meta ~client:client_pid ~seq ~cmd in
                    (* ONE batched write per memory: the new entry plus
                       the watermark covering the previous one (free
                       commit notification for the pollers).  The fence
                       keeps the batch behind its predecessor in every
                       QP stream, so a reordered watermark can never
                       overtake the entry it covers. *)
                    ignore
                      (Memclient.fence_all_async client
                        : Memory.op_result Ivar.t array);
                    let values =
                      [
                        (entry_reg index, Some (encode_entry ~term ~cmd:meta));
                        (commit_reg, Some (Codec.int_field (index - 1)));
                      ]
                    in
                    let writes =
                      Array.init m (fun i ->
                          Memory.write_many_async (Memclient.mem client i)
                            ~from:r.pid ~region ~values)
                    in
                    if
                      (all_acked writes quorum)
                      [@simlint.allow
                        "F1 append commit point: the quorum all-ack decides \
                         the entry; a rival that could read it stale first \
                         swaps permissions (draining this QP), and follower \
                         polls only trust entries behind the fenced \
                         watermark"]
                    then begin
                      incr next;
                      published := index - 1;
                      Hashtbl.replace dedup (client_pid, seq) index;
                      Hashtbl.replace stored index meta;
                      apply_entry r ~index ~cmd;
                      Stats.bump ctx.Cluster.ctx_stats "velos.appends";
                      Network.send ep ~dst:client_pid
                        (encode_msg (Ack { client = client_pid; seq; index }));
                      maybe_checkpoint ()
                    end
                    else deposed := true
                  end
            in
            while
              (not !deposed) && (not r.stopped)
              && Engine.now ctx.Cluster.ctx_engine < r.cfg.serve_until
              && Omega.leader ctx.Cluster.ctx_omega = r.pid
            do
              serve_rejoins ();
              serve_reads ();
              match Mailbox.recv_timeout r.requests 4.0 with
              | Some req -> append req
              | None ->
                  (* Idle: flush the watermark so pollers converge on
                     the final entry without waiting for a next append. *)
                  if (not !deposed) && !published < !next - 1 then
                    publish_watermark (!next - 1)
            done;
            (* TEST FIXTURE: a lease-violating leader ignores its own
               deposition and keeps serving local reads — exactly the
               stale-lease bug the chaos oracle must flag as an
               Agreement violation via the clients' watermark check. *)
            if r.cfg.lease_violation && (not r.stopped) && not r.zombie then begin
              r.zombie <- true;
              ctx.Cluster.spawn_sub "velos.zombie" (fun () ->
                  while
                    (not r.stopped)
                    && Engine.now ctx.Cluster.ctx_engine < r.cfg.serve_until
                  do
                    (match Mailbox.drain r.reads with
                    | [] -> ()
                    | readers ->
                        Stats.bump ctx.Cluster.ctx_stats "velos.reads.stale";
                        List.iter reply_read readers);
                    Engine.sleep 2.0
                  done)
            end
      end
    end
  done

let spawn_replica cluster ?(cfg = default_config) ~pid () =
  let r =
    {
      pid;
      cfg;
      applied = Queue.create ();
      applied_up_to = 0;
      current_term = 0;
      stopped = false;
      subscribed = false;
      zombie = false;
      requests = Mailbox.create ();
      reads = Mailbox.create ();
      rejoin = Mailbox.create ();
      commit_subs = [];
      recover_subs = [];
    }
  in
  Cluster.spawn cluster ~pid (fun ctx ->
      (* A (re)started replica begins from nothing — there is no
         snapshot protocol to rejoin through: the poll loop rebuilds
         the applied prefix from replica memory, one-sidedly. *)
      Queue.clear r.applied;
      r.applied_up_to <- 0;
      r.current_term <- 0;
      r.stopped <- false;
      r.zombie <- false;
      ignore (Mailbox.drain r.requests);
      ignore (Mailbox.drain r.reads);
      if not r.subscribed then begin
        r.subscribed <- true;
        Obs.subscribe ctx.Cluster.ctx_obs (fun ~at:_ ~actor:_ ev ->
            match (ev : Event.t) with
            | Event.Mem_restart { mid; _ } -> Mailbox.send r.rejoin mid
            | _ -> ())
      end;
      ctx.Cluster.spawn_sub "velos.pump" (fun () ->
          while not r.stopped do
            let _from, payload = Network.recv ctx.Cluster.ep in
            match decode_msg payload with
            | Some (Request { client; seq; cmd }) ->
                Mailbox.send r.requests (client, seq, cmd)
            | Some (Read_request { client; seq }) ->
                Mailbox.send r.reads (client, seq)
            | Some (Ack _) | Some (Read_reply _) | None -> ()
          done);
      ctx.Cluster.spawn_sub "velos.poll" (fun () -> poll_loop ctx r);
      leader_loop ctx r);
  r

let stop r = r.stopped <- true

(* {2 Clients} — same protocol shape as the PMP log: route to the Ω
   leader, await the matching reply, retry on timeout. *)

let read_destination (ctx : _ Cluster.ctx) cfg =
  (* TEST FIXTURE: with the stale-lease bug armed, clients keep asking
     the initial leader, so the zombie's stale answers actually reach
     them. *)
  if cfg.lease_violation then 0
  else min (Omega.leader ctx.Cluster.ctx_omega) (cfg.replicas - 1)

let linearizable_read (ctx : _ Cluster.ctx) ~cfg ~seq ~timeout =
  let me = ctx.Cluster.pid in
  let deadline = Engine.now ctx.Cluster.ctx_engine +. timeout in
  let rec attempt () =
    if Engine.now ctx.Cluster.ctx_engine >= deadline then None
    else begin
      Network.send ctx.Cluster.ep ~dst:(read_destination ctx cfg)
        (encode_msg (Read_request { client = me; seq }));
      let rec await () =
        let remaining = deadline -. Engine.now ctx.Cluster.ctx_engine in
        let wait = min 20.0 remaining in
        if wait <= 0. then None
        else
          match Network.recv_timeout ctx.Cluster.ep wait with
          | None -> attempt ()
          | Some (_, payload) -> (
              match decode_msg payload with
              | Some (Read_reply { client; seq = s; up_to })
                when client = me && s = seq ->
                  Some up_to
              | Some (Read_reply _ | Request _ | Ack _ | Read_request _) | None ->
                  await ())
      in
      await ()
    end
  in
  attempt ()

let submit (ctx : _ Cluster.ctx) ~cfg ~seq ~cmd ~timeout =
  let me = ctx.Cluster.pid in
  let deadline = Engine.now ctx.Cluster.ctx_engine +. timeout in
  let rec attempt () =
    if Engine.now ctx.Cluster.ctx_engine >= deadline then None
    else begin
      let leader = min (Omega.leader ctx.Cluster.ctx_omega) (cfg.replicas - 1) in
      Network.send ctx.Cluster.ep ~dst:leader
        (encode_msg (Request { client = me; seq; cmd }));
      let rec await () =
        let remaining = deadline -. Engine.now ctx.Cluster.ctx_engine in
        let wait = min 20.0 remaining in
        if wait <= 0. then None
        else
          match Network.recv_timeout ctx.Cluster.ep wait with
          | None -> attempt ()
          | Some (_, payload) -> (
              match decode_msg payload with
              | Some (Ack { client; seq = s; index }) when client = me && s = seq
                ->
                  Some index
              | Some (Ack _ | Request _ | Read_request _ | Read_reply _) | None ->
                  await ())
      in
      await ()
    end
  in
  attempt ()
