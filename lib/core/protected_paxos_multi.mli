(** Repeated Protected Memory Paxos: "the leader terminates one instance
    and becomes the default leader in the next" (Section 5.1).  One
    exclusive write permission covers all instances; leadership reigns
    take over with a single whole-region read, and every steady-state
    decision is one replicated write — two delays. *)

open Rdma_sim
open Rdma_mm
open Rdma_mem

val region : string

val slot_reg : instance:int -> int -> string

(** The checkpoint register: the decided values of a prefix of instances,
    written quorum-acked only after they decided; the covered slots are
    then truncated.  A takeover (or a repair) installs the checkpoint
    instead of replaying the slots. *)
val ckpt_reg : string

val encode_ckpt : values:string list -> string

val decode_ckpt : string -> string list option

val legal_change : Permission.legal_change

type config = {
  slots : int;
  f_m : int option;
  max_takeovers : int;
  checkpoint_every : int;
      (** checkpoint (and truncate the slots below) every this many
          decided instances; [0] disables checkpointing *)
  serve_until : float;
      (** keep a custodian fiber alive until this virtual time to repair
          memories that rejoin after the decisions are done; [0.] disables *)
}

val default_config : config

val setup_regions : 'm Cluster.t -> config -> unit

type handle

(** Per-instance decision ivars for one process. *)
val decisions : handle -> Report.decision Ivar.t array

val spawn :
  string Cluster.t ->
  ?cfg:config ->
  pid:int ->
  input_for:(instance:int -> string) ->
  unit ->
  handle

(** Run [cfg.slots] sequential decisions; returns one report per
    instance (cost counters in each report are cumulative over the whole
    run). *)
val run :
  ?cfg:config ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?prepare:(string Cluster.t -> unit) ->
  n:int ->
  m:int ->
  input_for:(pid:int -> instance:int -> string) ->
  unit ->
  Report.t array
