(* Classic single-decree Paxos (message passing, crash failures,
   n ≥ 2f + 1).

   This plays three roles in the repository:
   - the baseline message-passing consensus algorithm;
   - the algorithm A that Robust Backup transforms (Definition 2): the
     same functor body runs over trusted channels;
   - the backend of Preferential Paxos (Algorithm 8).

   Every process is proposer + acceptor + learner.  A proposer runs only
   while Ω trusts it; rounds use unique ballots (round * n + pid + 1).
   The decider broadcasts a Decide message so every correct process
   decides (the standard completion, cf. Theorem D.4). *)

open Rdma_sim
open Rdma_mm
open Rdma_obs

type msg =
  | Prepare of { ballot : int }
  | Promise of { ballot : int; accepted_ballot : int; accepted_value : string }
  | Reject of { ballot : int; higher : int }
  | Accept of { ballot : int; value : string }
  | Accepted of { ballot : int }
  | Decide of { value : string }

let encode = function
  | Prepare { ballot } -> Codec.join [ "prepare"; Codec.int_field ballot ]
  | Promise { ballot; accepted_ballot; accepted_value } ->
      Codec.join
        [ "promise"; Codec.int_field ballot; Codec.int_field accepted_ballot;
          accepted_value ]
  | Reject { ballot; higher } ->
      Codec.join [ "reject"; Codec.int_field ballot; Codec.int_field higher ]
  | Accept { ballot; value } ->
      Codec.join [ "accept"; Codec.int_field ballot; value ]
  | Accepted { ballot } -> Codec.join [ "accepted"; Codec.int_field ballot ]
  | Decide { value } -> Codec.join [ "decide"; value ]

let decode s =
  match Codec.split s with
  | [ "prepare"; b ] ->
      Option.map (fun ballot -> Prepare { ballot }) (Codec.int_of_field b)
  | [ "promise"; b; ab; av ] -> (
      match (Codec.int_of_field b, Codec.int_of_field ab) with
      | Some ballot, Some accepted_ballot ->
          Some (Promise { ballot; accepted_ballot; accepted_value = av })
      | _ -> None)
  | [ "reject"; b; h ] -> (
      match (Codec.int_of_field b, Codec.int_of_field h) with
      | Some ballot, Some higher -> Some (Reject { ballot; higher })
      | _ -> None)
  | [ "accept"; b; v ] ->
      Option.map (fun ballot -> Accept { ballot; value = v }) (Codec.int_of_field b)
  | [ "accepted"; b ] ->
      Option.map (fun ballot -> Accepted { ballot }) (Codec.int_of_field b)
  | [ "decide"; v ] -> Some (Decide { value = v })
  | _ -> None

type config = {
  round_timeout : float; (* how long a proposer waits for a quorum *)
  max_rounds : int; (* proposer retry budget; keeps failing runs finite *)
  retry_backoff : float; (* pause between a failed round and the next *)
}

let default_config = { round_timeout = 8.0; max_rounds = 64; retry_backoff = 4.0 }

module Make (T : Transport.S) = struct
  type t = {
    tr : T.t;
    engine : Engine.t;
    omega : Omega.t;
    cfg : config;
    input : string;
    decision : Report.decision Ivar.t;
    acceptor_box : (int * msg) Mailbox.t;
    proposer_box : (int * msg) Mailbox.t;
  }

  let decision t = t.decision

  let me t = T.me t.tr

  let majority t = (T.n t.tr / 2) + 1

  let decide t value =
    if Ivar.try_fill t.decision { Report.value; at = Engine.now t.engine } then
      Obs.event (Engine.obs t.engine)
        ~actor:(Printf.sprintf "p%d" (me t))
        (Event.Decide { pid = me t; value })

  (* Route incoming messages to the role that consumes them.  A Decide
     both records the decision and poisons the role mailboxes so their
     fibers exit. *)
  let pump t =
    let continue = ref true in
    while !continue do
      let from, payload = T.recv t.tr in
      match decode payload with
      | None -> () (* garbage: a Byzantine sender; ignore *)
      | Some (Decide { value } as m) ->
          decide t value;
          Mailbox.send t.acceptor_box (from, m);
          Mailbox.send t.proposer_box (from, m);
          continue := false
      | Some (Prepare _ as m) | Some (Accept _ as m) ->
          Mailbox.send t.acceptor_box (from, m)
      | Some (Promise _ as m) | Some (Reject _ as m) | Some (Accepted _ as m) ->
          Mailbox.send t.proposer_box (from, m)
    done

  let acceptor t =
    let min_proposal = ref 0 in
    let accepted_ballot = ref 0 in
    let accepted_value = ref "" in
    let continue = ref true in
    while !continue do
      let from, m = Mailbox.recv t.acceptor_box in
      match m with
      | Prepare { ballot } ->
          if ballot > !min_proposal then begin
            min_proposal := ballot;
            T.send t.tr ~dst:from
              (encode
                 (Promise
                    { ballot; accepted_ballot = !accepted_ballot;
                      accepted_value = !accepted_value }))
          end
          else T.send t.tr ~dst:from (encode (Reject { ballot; higher = !min_proposal }))
      | Accept { ballot; value } ->
          if ballot >= !min_proposal then begin
            min_proposal := ballot;
            accepted_ballot := ballot;
            accepted_value := value;
            T.send t.tr ~dst:from (encode (Accepted { ballot }))
          end
          else T.send t.tr ~dst:from (encode (Reject { ballot; higher = !min_proposal }))
      | Decide _ -> continue := false
      | Promise _ | Reject _ | Accepted _ -> ()
    done

  (* Collect replies to [ballot] until [quorum] positive replies, a
     reject, the deadline, or a decision.  Returns the positive replies. *)
  type 'a collect = Quorum of 'a list | Rejected of int | Timeout | Decided

  let collect_replies t ~ballot ~quorum ~extract =
    let deadline = Engine.now t.engine +. t.cfg.round_timeout in
    (* count each responder once — a (Byzantine) duplicate must not
       inflate the quorum *)
    let rec loop acc seen =
      if List.length acc >= quorum then Quorum acc
      else
        let remaining = deadline -. Engine.now t.engine in
        if remaining <= 0. then Timeout
        else
          match Mailbox.recv_timeout t.proposer_box remaining with
          | None -> Timeout
          | Some (from, m) -> (
              match m with
              | Decide _ -> Decided
              | Reject { ballot = b; higher } when b = ballot -> Rejected higher
              | Reject _ (* stale ballot *)
              | Prepare _ | Promise _ | Accept _ | Accepted _ -> (
                  match extract from m with
                  | Some r when not (List.mem from seen) ->
                      loop (r :: acc) (from :: seen)
                  | Some _ | None -> loop acc seen))
    in
    loop [] []

  let proposer t =
    let obs = Engine.obs t.engine in
    let actor = Printf.sprintf "p%d" (me t) in
    let round = ref 0 in
    let continue = ref true in
    (* Ballot skipping: a Reject names the higher ballot the acceptor has
       promised, so jump the round counter past it instead of ratcheting
       up one round at a time.  Without this, a leader taking over from a
       long-lived predecessor needs one (slow) round per ballot it is
       behind — enough to stall liveness past any finite patience. *)
    let catch_up higher =
      round := max !round ((higher - me t - 1) / T.n t.tr)
    in
    while !continue && not (Ivar.is_full t.decision) do
      Omega.wait_until_leader t.omega ~me:(me t);
      if Ivar.is_full t.decision then continue := false
      else begin
        incr round;
        if !round > t.cfg.max_rounds then continue := false
        else begin
          let ballot = (!round * T.n t.tr) + me t + 1 in
          let phase1 =
            Obs.with_span obs ~actor ~cat:"phase" "paxos.phase1" (fun () ->
                T.broadcast t.tr (encode (Prepare { ballot }));
                collect_replies t ~ballot ~quorum:(majority t)
                  ~extract:(fun _ m ->
                    match m with
                    | Promise { ballot = b; accepted_ballot; accepted_value }
                      when b = ballot ->
                        Some (accepted_ballot, accepted_value)
                    | Promise _ (* stale ballot *)
                    | Prepare _ | Reject _ | Accept _ | Accepted _ | Decide _ ->
                        None))
          in
          match phase1 with
          | Decided -> continue := false
          | Rejected higher ->
              catch_up higher;
              Engine.sleep t.cfg.retry_backoff
          | Timeout -> Engine.sleep t.cfg.retry_backoff
          | Quorum promises -> (
              let value =
                let best =
                  List.fold_left
                    (fun acc (ab, av) ->
                      match acc with
                      | Some (b, _) when b >= ab -> acc
                      | _ -> if ab > 0 then Some (ab, av) else acc)
                    None promises
                in
                match best with Some (_, v) -> v | None -> t.input
              in
              let phase2 =
                Obs.with_span obs ~actor ~cat:"phase" "paxos.phase2" (fun () ->
                    T.broadcast t.tr (encode (Accept { ballot; value }));
                    collect_replies t ~ballot ~quorum:(majority t)
                      ~extract:(fun _ m ->
                        match m with
                        | Accepted { ballot = b } when b = ballot -> Some ()
                        | Accepted _ (* stale ballot *)
                        | Prepare _ | Promise _ | Reject _ | Accept _ | Decide _ ->
                            None))
              in
              match phase2 with
              | Decided -> continue := false
              | Rejected higher ->
                  catch_up higher;
                  Engine.sleep t.cfg.retry_backoff
              | Timeout -> Engine.sleep t.cfg.retry_backoff
              | Quorum _ ->
                  (* Decide and tell everyone (self included: the pump
                     records the decision uniformly). *)
                  decide t value;
                  T.broadcast t.tr (encode (Decide { value }));
                  continue := false)
        end
      end
    done

  (* Wire up one process: [spawn_fiber] creates the three role fibers
     (cluster-provided, so an injected crash kills them all).  Returns the
     handle whose [decision] ivar fills when this process decides. *)
  let spawn ~engine ~omega ?(cfg = default_config) ~spawn_fiber ~transport ~input () =
    let t =
      {
        tr = transport;
        engine;
        omega;
        cfg;
        input;
        decision = Ivar.create ();
        acceptor_box = Mailbox.create ();
        proposer_box = Mailbox.create ();
      }
    in
    spawn_fiber "paxos.pump" (fun () -> pump t);
    spawn_fiber "paxos.acceptor" (fun () -> acceptor t);
    spawn_fiber "paxos.proposer" (fun () -> proposer t);
    t
end

module Over_network = Make (Transport.Net)

(* Run a complete message-passing Paxos instance on a fresh cluster. *)
let run ?(cfg = default_config) ?(seed = 1) ?(faults = []) ?(prepare = fun _ -> ()) ~n ~inputs () =
  if Array.length inputs <> n then invalid_arg "Paxos.run: |inputs| <> n";
  let cluster = Cluster.create ~seed ~n ~m:0 () in
  let handles =
    Array.init n (fun pid ->
        let ctx = Cluster.ctx cluster pid in
        let transport = Transport.Net.make ~ep:ctx.Cluster.ep ~n in
        Over_network.spawn
          ~engine:(Cluster.engine cluster)
          ~omega:(Cluster.omega cluster)
          ~cfg ~spawn_fiber:ctx.Cluster.spawn_sub ~transport ~input:inputs.(pid) ())
  in
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let decisions = Array.map (fun h -> Ivar.peek (Over_network.decision h)) handles in
  Report.of_stats ~algorithm:"paxos" ~n ~m:0 ~decisions
    ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
    ~steps:(Engine.steps (Cluster.engine cluster)) ()
