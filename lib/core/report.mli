(** Uniform run reports: per-process decisions with virtual decision times
    (= delay counts) and substrate counters. *)

open Rdma_sim
open Rdma_obs

type decision = { value : string; at : float }

(** One protocol phase's latency distribution over the run (times in
    delays), distilled from the spans recorded under [~cat:"phase"]. *)
type phase = {
  phase : string;
  count : int;
  p50 : float;
  p90 : float;
  p99 : float;
  worst : float;
}

type t = {
  algorithm : string;
  n : int;
  m : int;
  decisions : decision option array;
  messages : int;
  mem_ops : int;
  signatures : int;
  verifications : int;
  sim_steps : int;
  wall_events : int;
  named : (string * int) list;  (** snapshot of the named counters *)
  phases : phase list;  (** per-phase latency breakdown, sorted by name *)
}

(** [obs], when given, fills {!field-phases} from the collector's
    [~cat:"phase"] histograms. *)
val of_stats :
  ?obs:Obs.t ->
  algorithm:string ->
  n:int ->
  m:int ->
  decisions:decision option array ->
  stats:Stats.t ->
  steps:int ->
  unit ->
  t

(** Look up a named counter (0 if absent). *)
val named : t -> string -> int

val decided : t -> decision list

val decided_count : t -> int

(** Uniform agreement among deciders outside [ignore_pids]. *)
val agreement_ok : ?ignore_pids:int list -> t -> bool

(** Every decision (outside [ignore_pids]) is some process's input. *)
val validity_ok : ?ignore_pids:int list -> t -> inputs:string array -> bool

(** Earliest decision time — the paper's "k-deciding" metric. *)
val first_decision_time : t -> float option

val last_decision_time : t -> float option

val decision_value : t -> string option

val pp : Format.formatter -> t -> unit

val pp_phase : Format.formatter -> phase -> unit

(** The per-phase latency table ({!field-phases}). *)
val pp_phases : Format.formatter -> t -> unit
