(* Robust Backup (Definition 2): a crash-tolerant message-passing
   consensus algorithm A, with every send/receive replaced by
   T-send/T-receive, becomes a weak Byzantine agreement algorithm for
   n ≥ 2fP + 1 processes and m ≥ 2fM + 1 memories (Lemma 4.3 /
   Theorem 4.4).

   A = our classic Paxos; the transformation is literal — the Paxos
   functor is instantiated with a transport whose send/recv are
   T-send/T-receive over non-equivocating broadcast.  The Clement et al.
   state-machine check is [paxos_validator]: it replays the sender's
   claimed history and rejects any message a correct Paxos process could
   not send, translating Byzantine deviations into (detected) crashes. *)

open Rdma_sim
open Rdma_mm

(* {2 The trusted transport} *)

module T_transport = struct
  type t = {
    me : int;
    n : int;
    trusted : Trusted.t;
    inbox : (int * string) Mailbox.t;
  }

  let me t = t.me

  let n t = t.n

  (* Point-to-point send = non-equivocating broadcast of (dst, m);
     processes other than dst verify and record it but do not act on it. *)
  let send t ~dst msg = Trusted.t_send t.trusted (Codec.join2 (Codec.int_field dst) msg)

  (* dst = -1 addresses everyone in a single broadcast. *)
  let broadcast t msg = Trusted.t_send t.trusted (Codec.join2 (Codec.int_field (-1)) msg)

  let recv t = Mailbox.recv t.inbox

  let recv_timeout t delay = Mailbox.recv_timeout t.inbox delay
end

module Paxos_bft = Paxos.Make (T_transport)

(* {2 The Paxos state-machine validator (the Clement et al. replay)} *)

(* Replay [src]'s claimed history (oldest first) to reconstruct the state
   a correct Paxos process would be in. *)
type replay = {
  mutable min_proposal : int; (* rises with each Sent Promise/Accepted *)
  mutable accepted : (int * string) option; (* from Sent Accepted *)
  mutable sent_prepare : int list;
  mutable sent_accept : (int * string) list;
  mutable recv_prepare : (int * int) list; (* (from, ballot) *)
  mutable recv_accept : (int * int * string) list; (* (from, ballot, value) *)
  mutable recv_promise : (int * int * int * string) list;
      (* (from, ballot, accepted_ballot, accepted_value) — addressed to src *)
  mutable recv_accepted : (int * int) list; (* (from, ballot) addressed to src *)
  mutable sent_setup : bool; (* at most one Preferential Paxos set-up message *)
  mutable ok : bool;
}

let fresh_replay () =
  {
    min_proposal = 0;
    accepted = None;
    sent_prepare = [];
    sent_accept = [];
    recv_prepare = [];
    recv_accept = [];
    recv_promise = [];
    recv_accepted = [];
    sent_setup = false;
    ok = true;
  }

(* Application messages over the trusted transport: Paxos messages, plus
   the set-up phase of Preferential Paxos (Algorithm 8), which the
   validator treats separately (its values are constrained by evidence
   verification at the receivers, not by Paxos replay). *)
type app = Paxos_msg of Paxos.msg | Setup_msg

let setup_tag = "pps"

let decode_app msg =
  match Codec.split2 msg with
  | None -> None
  | Some (dstf, pmsg) -> (
      match Codec.int_of_field dstf with
      | None -> None
      | Some dst -> (
          match Codec.split3 pmsg with
          | Some (tag, _, _) when tag = setup_tag -> Some (dst, Setup_msg)
          | _ -> (
              match Paxos.decode pmsg with
              | Some m -> Some (dst, Paxos_msg m)
              | None -> None)))

(* Check and apply one outgoing message of [src]. *)
let replay_sent st ~n ~src (dst, app) =
  let owns ballot = ballot > 0 && (ballot - 1) mod n = src in
  let majority = (n / 2) + 1 in
  (match app with
  | Setup_msg -> if st.sent_setup then st.ok <- false else st.sent_setup <- true
  | Paxos_msg m -> (
      match m with
  | Paxos.Promise { ballot; accepted_ballot; accepted_value } ->
      (* must answer a received Prepare, with a genuinely higher ballot,
         reporting exactly the accepted state *)
      if
        (not (List.exists (fun (f, b) -> f = dst && b = ballot) st.recv_prepare))
        || ballot <= st.min_proposal
        ||
        match st.accepted with
        | None -> accepted_ballot <> 0
        | Some (ab, av) -> accepted_ballot <> ab || accepted_value <> av
      then st.ok <- false
      else st.min_proposal <- ballot
  | Paxos.Accepted { ballot } ->
      (* must answer a received Accept not below the promise level *)
      let matching = List.find_opt (fun (f, b, _) -> f = dst && b = ballot) st.recv_accept in
      (match matching with
      | None -> st.ok <- false
      | Some (_, _, v) ->
          if ballot < st.min_proposal then st.ok <- false
          else begin
            st.min_proposal <- ballot;
            st.accepted <- Some (ballot, v)
          end)
  | Paxos.Reject { ballot; higher } ->
      (* must cite the actual current minProposal *)
      let was_asked =
        List.exists (fun (f, b) -> f = dst && b = ballot) st.recv_prepare
        || List.exists (fun (f, b, _) -> f = dst && b = ballot) st.recv_accept
      in
      if (not was_asked) || higher <> st.min_proposal then st.ok <- false
  | Paxos.Prepare { ballot } ->
      if not (owns ballot) then st.ok <- false
      else st.sent_prepare <- ballot :: st.sent_prepare
  | Paxos.Accept { ballot; value } ->
      (* needs a majority of promises for this ballot and the mandated
         value selection *)
      if not (owns ballot && List.mem ballot st.sent_prepare) then st.ok <- false
      else begin
        let promises =
          List.filter (fun (_, b, _, _) -> b = ballot) st.recv_promise
          |> List.sort_uniq (fun (f1, _, _, _) (f2, _, _, _) -> compare f1 f2)
        in
        if List.length promises < majority then st.ok <- false
        else begin
          let best =
            List.fold_left
              (fun acc (_, _, ab, av) ->
                if ab > 0 then
                  match acc with Some (b0, _) when b0 >= ab -> acc | _ -> Some (ab, av)
                else acc)
              None promises
          in
          (match best with
          | Some (_, v) when v <> value -> st.ok <- false
          | _ -> ());
          if st.ok then st.sent_accept <- (ballot, value) :: st.sent_accept
        end
      end
  | Paxos.Decide { value } ->
      (* needs a majority of Accepted for a ballot whose Accept src sent
         with this value *)
      let justified =
        List.exists
          (fun (ballot, v) ->
            v = value
            && List.length
                 (List.sort_uniq compare
                    (List.filter_map
                       (fun (f, b) -> if b = ballot then Some f else None)
                       st.recv_accepted))
               >= majority)
          st.sent_accept
      in
      if not justified then st.ok <- false));
  st

(* Record one incoming message [src] claims to have received. *)
let replay_received st ~src (dst, app) ~from =
  (match app with
  | Setup_msg -> ()
  | Paxos_msg m -> (
      match m with
      | Paxos.Prepare { ballot } ->
          if dst = src || dst = -1 then
            st.recv_prepare <- (from, ballot) :: st.recv_prepare
      | Paxos.Accept { ballot; value } ->
          if dst = src || dst = -1 then
            st.recv_accept <- (from, ballot, value) :: st.recv_accept
      | Paxos.Promise { ballot; accepted_ballot; accepted_value } ->
          if dst = src || dst = -1 then
            st.recv_promise <-
              (from, ballot, accepted_ballot, accepted_value) :: st.recv_promise
      | Paxos.Accepted { ballot } ->
          if dst = src || dst = -1 then
            st.recv_accepted <- (from, ballot) :: st.recv_accepted
      | Paxos.Reject _ | Paxos.Decide _ -> ()));
  st

(* The validator handed to the trusted layer: replay everything in the
   history, then check the new message. *)
let paxos_validator ~n : Trusted.validator =
 fun ~src ~history ~msg ->
  let st = fresh_replay () in
  List.iter
    (fun entry ->
      if st.ok then
        match entry with
        | Trusted.Sent { msg; _ } -> (
            match decode_app msg with
            | None -> st.ok <- false
            | Some app -> ignore (replay_sent st ~n ~src app))
        | Trusted.Received { src = from; msg; _ } -> (
            match decode_app msg with
            | None -> st.ok <- false
            | Some app -> ignore (replay_received st ~src app ~from)))
    history;
  if not st.ok then `Reject
  else
    match decode_app msg with
    | None -> `Reject
    | Some app ->
        ignore (replay_sent st ~n ~src app);
        if st.ok then `Accept else `Reject

(* {2 Wiring} *)

type config = {
  paxos : Paxos.config;
  trusted : Trusted.config;
  validate : bool; (* replay-check histories (Clement et al.) *)
}

(* Rounds are paced for the trusted transport: a T-sent message is
   delivered only after NEB poll cycles and O(n) cross-check reads, so a
   Paxos round trip costs tens of delay units.  max_rounds is kept low
   enough that a livelocked run cannot exhaust the NEB sequence space
   (each round broadcasts at most 3 messages per process). *)
let default_config =
  {
    paxos = { Paxos.round_timeout = 150.0; retry_backoff = 30.0; max_rounds = 16 };
    trusted =
      { Trusted.neb =
          { Neb.ns = ""; max_seq = 128; poll_interval = 1.0; give_up_at = 4000.0 } };
    validate = true;
  }

type handle = {
  decision : Report.decision Ivar.t;
  trusted : Trusted.t;
  transport : T_transport.t;
}

let decision h = h.decision

(* Build the trusted channel for one process.  [route] gets first look at
   every delivered application message (after the dst unwrap) and returns
   true to consume it — Preferential Paxos routes its set-up messages this
   way; everything else flows into the Paxos inbox. *)
let make_channel (ctx : _ Cluster.ctx) ?(cfg = default_config)
    ?(route = fun ~src:_ ~msg:_ -> false) () =
  let n = ctx.Cluster.cluster_n in
  let me = ctx.Cluster.pid in
  let inbox = Mailbox.create () in
  let validator = if cfg.validate then paxos_validator ~n else Trusted.accept_all in
  let trusted =
    Trusted.create ctx ~cfg:cfg.trusted ~validator
      ~on_receive:(fun ~src ~msg ->
        match Codec.split2 msg with
        | None -> ()
        | Some (dstf, pmsg) -> (
            match Codec.int_of_field dstf with
            | Some dst when dst = me || dst = -1 ->
                if not (route ~src ~msg:pmsg) then Mailbox.send inbox (src, pmsg)
            | _ -> ()))
      ()
  in
  ({ T_transport.me; n; trusted; inbox }, trusted)

(* Build the trusted transport and Paxos roles for one process.  Must be
   called from within the process's program fiber (it spawns
   sub-fibers). *)
let attach (ctx : _ Cluster.ctx) ?(cfg = default_config) ~input () =
  let transport, trusted = make_channel ctx ~cfg () in
  let paxos =
    Paxos_bft.spawn ~engine:ctx.Cluster.ctx_engine ~omega:ctx.Cluster.ctx_omega
      ~cfg:cfg.paxos ~spawn_fiber:ctx.Cluster.spawn_sub ~transport ~input ()
  in
  let decision = Paxos_bft.decision paxos in
  (* stop the NEB poller once we have decided, so the run quiesces *)
  Ivar.on_fill decision (fun _ -> Trusted.stop trusted);
  { decision; trusted; transport }

let setup_regions cluster ?(cfg = default_config) () =
  Neb.setup_regions cluster ~ns:cfg.trusted.Trusted.neb.Neb.ns
    ~max_seq:cfg.trusted.Trusted.neb.Neb.max_seq ()

(* Run honest processes with the given inputs; [byzantine] replaces the
   programs of chosen processes with adversarial behaviours. *)
let run ?(cfg = default_config) ?(seed = 1) ?(faults = [])
    ?(prepare = fun _ -> ())
    ?(byzantine : (int * (string Cluster.ctx -> unit)) list = []) ~n ~m ~inputs () =
  if Array.length inputs <> n then invalid_arg "Robust_backup.run: |inputs| <> n";
  let cluster = Cluster.create ~seed ~n ~m () in
  setup_regions cluster ~cfg ();
  let decisions = Array.make n None in
  let handles = Array.make n None in
  for pid = 0 to n - 1 do
    match List.assoc_opt pid byzantine with
    | Some behaviour -> Cluster.spawn_byzantine cluster ~pid behaviour
    | None ->
        Cluster.spawn cluster ~pid (fun ctx ->
            let h = attach ctx ~cfg ~input:inputs.(pid) () in
            handles.(pid) <- Some h)
  done;
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Array.iteri
    (fun pid h ->
      match h with
      | Some h -> decisions.(pid) <- Ivar.peek h.decision
      | None -> decisions.(pid) <- None)
    handles;
  let ignore_pids = List.map fst byzantine in
  let report =
    Report.of_stats ~algorithm:"robust-backup" ~n ~m ~decisions
      ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
      ~steps:(Engine.steps (Cluster.engine cluster)) ()
  in
  (report, ignore_pids)
