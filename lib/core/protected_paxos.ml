(* Protected Memory Paxos (Algorithm 7): crash-tolerant consensus with
   n ≥ fP + 1 processes and m ≥ 2fM + 1 memories, 2-deciding.

   Disk Paxos structure, minus two delays: at any time exactly one
   process holds write permission on each memory, so a leader whose
   phase-2 write succeeds knows no rival took over — the "uncontended
   instantaneous guarantee" of dynamic permissions — and can decide
   without Disk Paxos's final read.

   Region layout: Region[i] is all of memory i, with registers slot[i,p]
   for every p, initially writable exclusively by p1 (Algorithm 7
   lines 1–4).  A process becoming leader acquires the exclusive write
   permission (line 13); the memory-side legalChange policy only admits
   such exclusive-writer takeovers. *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_net
open Rdma_obs

let region = "pmp"

let slot_reg q = Printf.sprintf "slot.%d" q

(* (minProp, accProp, value); an unwritten slot reads as ⊥ (None). *)
let encode_slot ~min_prop ~acc_prop ~value =
  Codec.join3 (Codec.int_field min_prop) (Codec.int_field acc_prop) value

let decode_slot s =
  match Codec.split3 s with
  | None -> None
  | Some (mp, ap, v) -> (
      match (Codec.int_of_field mp, Codec.int_of_field ap) with
      | Some min_prop, Some acc_prop -> Some (min_prop, acc_prop, v)
      | _ -> None)

(* legalChange: a process may only take the exclusive-writer shape for
   itself. *)
let legal_change ~pid ~region:r ~current:_ ~requested =
  r = region
  &&
  match Permission.sole_writer requested with Some w -> w = pid | None -> false

type config = {
  f_m : int option; (* tolerated memory crashes; default ⌊(m-1)/2⌋ *)
  max_rounds : int;
}

let default_config = { f_m = None; max_rounds = 64 }

let setup_regions cluster =
  let n = Cluster.n cluster in
  Cluster.add_region_everywhere cluster ~name:region
    ~perm:(Permission.exclusive_writer ~writer:0 ~n)
    ~registers:(List.init n slot_reg)

(* Per-memory phase-1 chain of a new leader: take the write permission,
   write our slot with the new proposal number, then read every slot
   (sequentially — the model allows one outstanding operation per
   memory). *)
type phase1_result =
  | P1_ok of (int * int * string) option array (* per-process slot contents *)
  | P1_write_failed

let phase1_chain (ctx : _ Cluster.ctx) ~mem ~prop_nr result =
  let n = ctx.Cluster.cluster_n in
  let client = ctx.Cluster.client in
  let (_ : Memory.op_result) =
    Memclient.change_permission client ~mem ~region
      ~perm:(Permission.exclusive_writer ~writer:ctx.Cluster.pid ~n)
  in
  let w =
    Memclient.write client ~mem ~region ~reg:(slot_reg ctx.Cluster.pid)
      (encode_slot ~min_prop:prop_nr ~acc_prop:0 ~value:"")
  in
  match w with
  | Memory.Nak -> Ivar.fill result P1_write_failed
  | Memory.Ack ->
      let info = Array.make n None in
      let ok = ref true in
      for q = 0 to n - 1 do
        if !ok then
          match Memclient.read client ~mem ~region ~reg:(slot_reg q) with
          | Memory.Read (Some s) -> info.(q) <- decode_slot s
          | Memory.Read None -> ()
          | Memory.Read_nak ->
              (* Our read permission should never lapse; treat as a failed
                 iteration of the pfor loop. *)
              ok := false
      done;
      Ivar.fill result (if !ok then P1_ok info else P1_write_failed)
[@@simlint.allow
  "F1 rides the control-plane drain: phase 1 grabs exclusive write \
   permission just above, and a rival must itself switch permissions \
   -- which drains this write -- before it can act on the region; the \
   Ack branch only gates the leader's own reads (EXPERIMENTS.md W2)"]

type handle = { decision : Report.decision Ivar.t }

let decision h = h.decision

(* The Decide broadcast that makes every correct process decide once some
   process has (the standard completion, Theorem D.4). *)
let announce (ctx : _ Cluster.ctx) value =
  Network.broadcast ctx.Cluster.ep (Codec.join2 "decide" value)

let listener (ctx : _ Cluster.ctx) decision =
  let continue = ref true in
  while !continue do
    let _, payload = Network.recv ctx.Cluster.ep in
    match Codec.split2 payload with
    | Some ("decide", v) ->
        if
          Ivar.try_fill decision
            { Report.value = v; at = Engine.now ctx.Cluster.ctx_engine }
        then
          Obs.event ctx.Cluster.ctx_obs
            ~actor:(Printf.sprintf "p%d" ctx.Cluster.pid)
            (Event.Decide { pid = ctx.Cluster.pid; value = v });
        continue := false
    | _ -> ()
  done

let proposer (ctx : _ Cluster.ctx) cfg ~input decision =
  let n = ctx.Cluster.cluster_n in
  let m = ctx.Cluster.cluster_m in
  let me = ctx.Cluster.pid in
  let client = ctx.Cluster.client in
  let obs = ctx.Cluster.ctx_obs in
  let actor = Printf.sprintf "p%d" me in
  let f_m = match cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  if quorum <= 0 || f_m < 0 then invalid_arg "Protected_paxos: bad f_m";
  let round = ref 0 in
  let first_attempt = ref true in
  let continue = ref true in
  while !continue do
    Omega.wait_until_leader ctx.Cluster.ctx_omega ~me;
    if Ivar.is_full decision then continue := false
    else begin
      incr round;
      if !round > cfg.max_rounds then continue := false
      else begin
        let prop_nr = (!round * n) + me + 1 in
        (* Phase 1 — skipped by p1 on its very first attempt: it already
           holds the write permission everywhere, so a successful phase-2
           write certifies no rival ever took over. *)
        let my_value = ref (Some input) in
        (if (not (me = 0)) || not !first_attempt then
           Obs.with_span obs ~actor ~cat:"phase" "pmp.phase1" @@ fun () ->
           let chains = Array.init m (fun _ -> Ivar.create ()) in
           for i = 0 to m - 1 do
             ctx.Cluster.spawn_sub
               (Printf.sprintf "pmp.chain%d" i)
               (fun () -> phase1_chain ctx ~mem:i ~prop_nr chains.(i))
           done;
           let completed = Par.await_k chains quorum in
           let any_write_failed =
             List.exists (fun (_, r) -> r = P1_write_failed) completed
           in
           if any_write_failed then my_value := None
           else begin
             let best = ref None in
             let higher_seen = ref false in
             List.iter
               (fun (_, r) ->
                 match r with
                 | P1_write_failed -> ()
                 | P1_ok info ->
                     Array.iter
                       (function
                         | None -> ()
                         | Some (min_prop, acc_prop, v) ->
                             if min_prop > prop_nr then higher_seen := true;
                             if acc_prop > 0 then
                               match !best with
                               | Some (b, _) when b >= acc_prop -> ()
                               | _ -> best := Some (acc_prop, v))
                       info)
               completed;
             if !higher_seen then my_value := None
             else
               match !best with
               | Some (_, v) -> my_value := Some v
               | None -> my_value := Some input
           end);
        first_attempt := false;
        match !my_value with
        | None -> () (* retry: deposed or outpaced during phase 1 *)
        | Some value ->
            (* Phase 2: write (propNr, propNr, value) to our slot on every
               memory; if all m - fM collected responses are acks, no
               rival acquired the permission — decide. *)
            Obs.with_span obs ~actor ~cat:"phase" "pmp.phase2" (fun () ->
                let writes =
                  Memclient.write_all_async client ~region ~reg:(slot_reg me)
                    (encode_slot ~min_prop:prop_nr ~acc_prop:prop_nr ~value)
                in
                let completed = Par.await_k writes quorum in
                if List.for_all (fun (_, r) -> r = Memory.Ack) completed
                then begin
                  if
                    Ivar.try_fill decision
                      { Report.value; at = Engine.now ctx.Cluster.ctx_engine }
                  then
                    Obs.event obs ~actor (Event.Decide { pid = me; value });
                  announce ctx value;
                  continue := false
                end
                (* else: a write was nak'd — someone took the permission *))
      end
    end
  done

let spawn cluster ?(cfg = default_config) ~pid ~input () =
  let decision = Ivar.create () in
  Cluster.spawn cluster ~pid (fun ctx ->
      ctx.Cluster.spawn_sub "pmp.listener" (fun () -> listener ctx decision);
      proposer ctx cfg ~input decision);
  { decision }

(* Run a complete instance: build the cluster, apply the fault schedule,
   execute to quiescence, and report. *)
let run ?(cfg = default_config) ?(seed = 1) ?(faults = []) ?(prepare = fun _ -> ()) ~n ~m ~inputs () =
  if Array.length inputs <> n then invalid_arg "Protected_paxos.run: |inputs| <> n";
  let cluster = Cluster.create ~seed ~legal_change ~n ~m () in
  setup_regions cluster;
  let handles = Array.init n (fun pid -> spawn cluster ~cfg ~pid ~input:inputs.(pid) ()) in
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let decisions = Array.map (fun h -> Ivar.peek h.decision) handles in
  Report.of_stats ~algorithm:"protected-memory-paxos" ~n ~m ~decisions
    ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
    ~steps:(Engine.steps (Cluster.engine cluster)) ()
