(** Transport abstraction.

    Classic Paxos runs over the raw network; Robust Backup runs the
    {e same} Paxos code over trusted channels (T-send/T-receive,
    Algorithm 3).  Abstracting the transport is exactly the paper's
    Definition 2: "the algorithm A in which all send and receive
    operations are replaced by T-send and T-receive". *)

module type S = sig
  type t

  val me : t -> int

  val n : t -> int

  val send : t -> dst:int -> string -> unit
  (** Point-to-point send (dst may be [me]). *)

  val broadcast : t -> string -> unit

  val recv : t -> int * string
  (** Blocking receive: [(sender, payload)]. *)

  val recv_timeout : t -> float -> (int * string) option
end

(** The raw network transport. *)
module Net : sig
  include S

  val make : ep:string Rdma_net.Network.endpoint -> n:int -> t
end
