(* Trusted message passing: T-send / T-receive (Algorithm 3, after
   Clement et al. [20]).

   Every T-sent message travels by non-equivocating broadcast together
   with the sender's *full history*, and receivers check that the history
   (a) is signed where it cites other processes, (b) extends the history
   the sender previously presented, and (c) together with the new message
   conforms to the protocol being run (a pluggable validator — the
   state-machine replay of Clement et al.).  A process that passes these
   checks forever can deviate from the protocol only by stopping — its
   Byzantine failure has been translated into a crash failure.

   Representation: history entries are flat records.  A Sent entry needs
   no signature of its own (the entire (k, (m, H)) broadcast is signed by
   the sender through NEB); a Received entry cites the original sender's
   *bare* signature on (k, m), which every process can verify standalone.
   To let receivers verify those citations, T-send attaches a bare
   signature alongside the NEB-signed payload. *)

open Rdma_sim
open Rdma_mm
open Rdma_crypto

type entry =
  | Sent of { k : int; msg : string }
  | Received of { src : int; k : int; msg : string; sig_enc : string }

let encode_entry = function
  | Sent { k; msg } -> Codec.join3 "s" (Codec.int_field k) msg
  | Received { src; k; msg; sig_enc } ->
      Codec.join [ "r"; Codec.int_field src; Codec.int_field k; msg; sig_enc ]

let decode_entry s =
  match Codec.split s with
  | [ "s"; kf; msg ] -> Option.map (fun k -> Sent { k; msg }) (Codec.int_of_field kf)
  | [ "r"; srcf; kf; msg; sig_enc ] -> (
      match (Codec.int_of_field srcf, Codec.int_of_field kf) with
      | Some src, Some k -> Some (Received { src; k; msg; sig_enc })
      | _ -> None)
  | _ -> None

let encode_history entries = Codec.join (List.map encode_entry entries)

let decode_history s =
  let fields = Codec.split s in
  let entries = List.filter_map decode_entry fields in
  if List.length entries = List.length fields then Some entries else None

(* The bare signature of (src, k, m) that Received entries cite. *)
let bare_payload ~k msg = Codec.join2 ("bare" ^ Codec.int_field k) msg

(* A validator inspects the claimed history of [src] (oldest first) and
   the new message, and says whether a correct process running the
   protocol could send it.  [`Accept] delivers; [`Reject] convicts. *)
type validator = src:int -> history:entry list -> msg:string -> [ `Accept | `Reject ]

let accept_all : validator = fun ~src:_ ~history:_ ~msg:_ -> `Accept

type config = { neb : Neb.config }

let default_config = { neb = Neb.default_config }

type t = {
  me : int;
  n : int;
  chain : Keychain.t;
  signer : Keychain.signer;
  stats : Stats.t;
  neb : Neb.t;
  validator : validator;
  on_receive : src:int -> msg:string -> unit;
  mutable history : entry list; (* newest first *)
  (* per peer: the history it presented with its last delivered message,
     oldest first, and that message — used for the prefix check *)
  peer_hist : entry list array;
  peer_last_sent : (int * string) option array;
  convicted : bool array;
}

(* Verify one cited Received entry: the claimed original sender really
   signed (k, m). *)
let cited_signature_ok chain = function
  | Sent _ -> true
  | Received { src; k; msg; sig_enc } -> (
      match Keychain.decode sig_enc with
      | None -> false
      | Some signature ->
          Keychain.author signature = src
          && Keychain.valid chain ~author:src (bare_payload ~k msg) signature)

(* H must extend H_prev ++ [Sent (k_prev, m_prev)], and the added suffix
   may contain only Received entries (between two sends, a correct
   process only receives). *)
let extends ~prev ~prev_sent ~current =
  let rec strip_prefix prefix rest =
    match (prefix, rest) with
    | [], rest -> Some rest
    | p :: ps, r :: rs when p = r -> strip_prefix ps rs
    | _ -> None
  in
  let expected_prefix =
    match prev_sent with
    | None -> prev
    | Some (k, msg) -> prev @ [ Sent { k; msg } ]
  in
  match strip_prefix expected_prefix current with
  | None -> false
  | Some suffix ->
      List.for_all (function Received _ -> true | Sent _ -> false) suffix

(* Called by the NEB deliver hook: k-th message of [src] with payload
   (m, bare signature, history). *)
let handle_delivery t ~k ~payload ~src =
  if not t.convicted.(src) then begin
    match Codec.split3 payload with
    | None -> t.convicted.(src) <- true
    | Some (msg, sig_enc, hist_enc) -> (
        match (Keychain.decode sig_enc, decode_history hist_enc) with
        | None, _ | _, None -> t.convicted.(src) <- true
        | Some bare_sig, Some history ->
            let checks =
              Keychain.valid t.chain ~author:src (bare_payload ~k msg) bare_sig
              && List.for_all (cited_signature_ok t.chain) history
              && extends ~prev:t.peer_hist.(src) ~prev_sent:t.peer_last_sent.(src)
                   ~current:history
              && t.validator ~src ~history ~msg = `Accept
            in
            if not checks then t.convicted.(src) <- true
            else begin
              t.peer_hist.(src) <- history;
              t.peer_last_sent.(src) <- Some (k, msg);
              (* T-receive(m, src): record it in our own history and hand
                 the message to the application. *)
              t.history <- Received { src; k; msg; sig_enc } :: t.history;
              t.on_receive ~src ~msg
            end)
  end

let create (ctx : _ Cluster.ctx) ?(cfg = default_config) ?(validator = accept_all)
    ~on_receive () =
  let n = ctx.Cluster.cluster_n in
  let rec t =
    lazy
      {
        me = ctx.Cluster.pid;
        n;
        chain = ctx.Cluster.chain;
        signer = ctx.Cluster.signer;
        stats = ctx.Cluster.ctx_stats;
        neb =
          Neb.create ctx ~cfg:cfg.neb
            ~deliver:(fun ~k ~msg ~src ->
              handle_delivery (Lazy.force t) ~k ~payload:msg ~src)
            ();
        validator;
        on_receive;
        history = [];
        peer_hist = Array.make n [];
        peer_last_sent = Array.make n None;
        convicted = Array.make n false;
      }
  in
  let t = Lazy.force t in
  Neb.spawn_poller ctx t.neb;
  t

let stop t = Neb.stop t.neb

let history t = List.rev t.history

let is_convicted t src = t.convicted.(src)

(* T-send(m): broadcast (m, bare signature, full history) and append the
   Sent entry. *)
let t_send t msg =
  let oldest_first = List.rev t.history in
  let k = ref 0 in
  (* the NEB sequence number equals the count of our prior broadcasts *)
  List.iter (function Sent _ -> incr k | Received _ -> ()) oldest_first;
  let seq = !k + 1 in
  (* Append the Sent entry NOW, before the broadcast yields to the
     simulator: Neb.broadcast blocks for the replicated write, and any
     message delivered to us in that window would otherwise be recorded
     ahead of this Sent — making our next presented history fail the
     receivers' extends-check and convicting a correct process.  The
     broadcast itself carries the pre-send snapshot, which is what the
     protocol specifies. *)
  t.history <- Sent { k = seq; msg } :: t.history;
  let bare_sig = Keychain.sign t.signer (bare_payload ~k:seq msg) in
  let payload =
    Codec.join3 msg (Keychain.encode bare_sig) (encode_history oldest_first)
  in
  (* observability: the cost of carrying full histories (the known
     burden of the Clement et al. transform, which motivates the Cheap
     Quorum fast path) *)
  let hist_len = List.length oldest_first in
  if hist_len > Stats.get t.stats "trusted.max_history_entries" then
    Stats.set t.stats "trusted.max_history_entries" hist_len;
  if String.length payload > Stats.get t.stats "trusted.max_payload_bytes" then
    Stats.set t.stats "trusted.max_payload_bytes" (String.length payload);
  Neb.broadcast t.neb payload
