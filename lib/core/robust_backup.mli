(** Robust Backup (Definition 2, Theorem 4.4): crash-tolerant Paxos with
    its transport replaced by T-send/T-receive becomes weak Byzantine
    agreement for n ≥ 2fP + 1 processes and m ≥ 2fM + 1 memories. *)

open Rdma_sim
open Rdma_mm

(** The trusted transport: point-to-point sends become non-equivocating
    broadcasts tagged with the destination. *)
module T_transport : sig
  type t = {
    me : int;
    n : int;
    trusted : Trusted.t;
    inbox : (int * string) Mailbox.t;
  }

  val me : t -> int

  val n : t -> int

  val send : t -> dst:int -> string -> unit

  (** dst = −1 addresses everyone. *)
  val broadcast : t -> string -> unit

  val recv : t -> int * string

  val recv_timeout : t -> float -> (int * string) option
end

module Paxos_bft : module type of Paxos.Make (T_transport)

(** Application messages over the trusted transport: Paxos messages plus
    Preferential Paxos set-up messages (validated separately). *)
type app = Paxos_msg of Paxos.msg | Setup_msg

val setup_tag : string

val decode_app : string -> (int * app) option

(** The Clement et al. state-machine replay for Paxos: rejects any
    message a correct Paxos process could not send given the claimed
    history. *)
val paxos_validator : n:int -> Trusted.validator

type config = {
  paxos : Paxos.config;
  trusted : Trusted.config;
  validate : bool;  (** replay-check histories *)
}

val default_config : config

type handle = {
  decision : Report.decision Ivar.t;
  trusted : Trusted.t;
  transport : T_transport.t;
}

val decision : handle -> Report.decision Ivar.t

(** Build the trusted channel for one process; [route] gets first look at
    every delivered application message and returns true to consume it. *)
val make_channel :
  'm Cluster.ctx ->
  ?cfg:config ->
  ?route:(src:int -> msg:string -> bool) ->
  unit ->
  T_transport.t * Trusted.t

(** Trusted channel + the three Paxos roles, from inside the process's
    program fiber. *)
val attach : 'm Cluster.ctx -> ?cfg:config -> input:string -> unit -> handle
[@@sim.yields]

val setup_regions : 'm Cluster.t -> ?cfg:config -> unit -> unit

(** Run one weak-Byzantine-agreement instance.  [byzantine] replaces
    chosen processes' programs with adversarial behaviours; returns the
    report and the Byzantine pids (to exclude from agreement checks). *)
val run :
  ?cfg:config ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?prepare:(string Cluster.t -> unit) ->
  ?byzantine:(int * (string Cluster.ctx -> unit)) list ->
  n:int ->
  m:int ->
  inputs:string array ->
  unit ->
  Report.t * int list
