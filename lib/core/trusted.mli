(** T-send / T-receive (Algorithm 3, after Clement et al.): messages
    travel by non-equivocating broadcast together with the sender's full
    history; receivers verify citations, prefix-consistency, and protocol
    conformance (a pluggable validator).  A sender that passes forever
    can only deviate by stopping — Byzantine is translated to crash. *)

open Rdma_mm

type entry =
  | Sent of { k : int; msg : string }
  | Received of { src : int; k : int; msg : string; sig_enc : string }

val encode_entry : entry -> string

val decode_entry : string -> entry option

val encode_history : entry list -> string

val decode_history : string -> entry list option

(** The bare signature payload of (k, m) that Received entries cite. *)
val bare_payload : k:int -> string -> string

(** Inspect the claimed history (oldest first) and the new message:
    could a correct process running the protocol send it? *)
type validator = src:int -> history:entry list -> msg:string -> [ `Accept | `Reject ]

val accept_all : validator

type config = { neb : Neb.config }

val default_config : config

type t

val create :
  'm Cluster.ctx ->
  ?cfg:config ->
  ?validator:validator ->
  on_receive:(src:int -> msg:string -> unit) ->
  unit ->
  t

val stop : t -> unit

(** Own history, oldest first. *)
val history : t -> entry list

(** Whether [src] has been caught deviating (nothing further is ever
    accepted from it). *)
val is_convicted : t -> int -> bool

(** T-send(m): non-equivocating broadcast of (m, bare signature, full
    history). *)
val t_send : t -> string -> unit [@@sim.yields]
