(** Cheap Quorum (Algorithms 4 and 5): the 2-deciding Byzantine fast
    path — one replicated write, one signature — with panic mode and
    Definition 3 abort evidence.  Not a complete consensus algorithm:
    its outputs feed Fast & Robust. *)

open Rdma_mm
open Rdma_mem
open Rdma_crypto

val leader : int

(** The leader region of instance namespace [ns]. *)
val leader_region_ns : string -> string

val leader_region : string

val leader_value_reg : string

val region_of : ?ns:string -> int -> string

val value_reg : int -> string

val panic_reg : int -> string

val proof_reg : int -> string

(** The byte string processes sign: the proposed value under a protocol
    tag and instance namespace (so signatures and proofs cannot be
    replayed across instances). *)
val value_payload : ?ns:string -> string -> string

val encode_leader_value : value:string -> sig_l:Keychain.signature -> string

val decode_leader_value : string -> (string * Keychain.signature) option

val encode_proof : value:string -> sigs:(int * Keychain.signature) list -> string

(** verifyProof: [Some v] iff the proof carries n distinct valid
    countersignatures on the same value v (within namespace [ns]). *)
val verify_proof : ?ns:string -> Keychain.t -> n:int -> string -> string option

(** The only legal permission change (Algorithm 5 line 3): make the
    leader region read-only for everybody. *)
val legal_change : n:int -> Permission.legal_change

val setup_regions : ?ns:string -> 'm Cluster.t -> unit

type evidence =
  | Unanimity of string  (** T: encoded unanimity proof *)
  | Leader_signed of Keychain.signature  (** M *)
  | Bare  (** B *)

type outcome =
  | Decided of { value : string; at : float; proof : evidence }
  | Aborted of { value : string; proof : evidence }

type config = {
  ns : string;  (** instance namespace; [""] for standalone use *)
  fast_timeout : float;
      (** upper bound on common-case delays (footnote 3) *)
  check_interval : float;
}

val default_config : config

(** Run one process's participation to its outcome (blocking; call from
    the process's program fiber). *)
val participate :
  string Cluster.ctx -> ?cfg:config -> input:string -> unit -> outcome
[@@sim.yields]
