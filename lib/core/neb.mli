(** Non-equivocating broadcast (Algorithm 2, Definition 1) over SWMR
    regions replicated on crash-prone memories. *)

open Rdma_mm
open Rdma_crypto

(** The SWMR region owned by process [p] within instance namespace
    [ns]. *)
val region_of : ?ns:string -> int -> string

(** slots[owner, k, src] — [owner]'s copy of the k-th message of [src],
    within instance namespace [ns]. *)
val slot_reg_ns : ns:string -> owner:int -> k:int -> src:int -> string

(** {!slot_reg_ns} in the default namespace. *)
val slot_reg : owner:int -> k:int -> src:int -> string

(** The byte string a broadcaster signs: (ns, k, m) — namespaced so
    signatures cannot be replayed across instances. *)
val slot_payload : ?ns:string -> k:int -> string -> string

val encode_slot : k:int -> msg:string -> signature:Keychain.signature -> string

val decode_slot : string -> (int * string * Keychain.signature) option

type config = {
  ns : string;  (** instance namespace; [""] for standalone use *)
  max_seq : int;  (** pre-allocated sequence numbers per broadcaster *)
  poll_interval : float;
  give_up_at : float;  (** virtual time after which the poller stops *)
}

val default_config : config

type t

(** Create all NEB regions on every memory. *)
val setup_regions : 'm Cluster.t -> ?ns:string -> max_seq:int -> unit -> unit

(** Build one process's instance; [deliver] is invoked (in the poller
    fiber) for every delivered message. *)
val create :
  'm Cluster.ctx ->
  ?cfg:config ->
  deliver:(k:int -> msg:string -> src:int -> unit) ->
  unit ->
  t

(** Stop the delivery daemon (so the simulation can quiesce). *)
val stop : t -> unit

(** broadcast(k, m) with auto-incremented k.  Blocking: one replicated
    write (2 delays).  Raises [Invalid_argument] past [max_seq]. *)
val broadcast : t -> string -> unit [@@sim.yields]

(** One delivery attempt for the next message of [src]; true if
    delivered.  Exposed for tests; normal use runs {!spawn_poller}. *)
val try_deliver : t -> int -> bool [@@sim.yields]

val spawn_poller : 'm Cluster.ctx -> t -> unit
