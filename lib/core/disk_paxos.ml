(* Disk Paxos (Gafni & Lamport) — the shared-memory baseline.

   n ≥ fP + 1 processes and m ≥ 2fM + 1 memories ("disks"), *static*
   permissions: every process can read and write every register (the disk
   model of Section 3).  The paper's comparison point: same resilience as
   Protected Memory Paxos, but a leader needs at least FOUR delays in the
   common case — after writing its block it must read the disks again to
   check that no rival overwrote a higher ballot, precisely the read that
   dynamic permissions let Protected Memory Paxos skip (Section 5.1,
   Theorem 6.1).

   Each disk holds one block per process: dblock[p] = (mbal, bal, inp).
   A round: write your block to every disk, then read everyone else's
   blocks from every disk; proceed when a majority of disks completed
   both; abort the round if any block shows a higher mbal.  Phase 1
   establishes the ballot and picks the value; phase 2 commits it.  A
   leader that owns the initial ballot skips phase 1 (the standard
   common-case optimization) — it still cannot skip the phase-2 read.

   Decisions are disseminated through the disks themselves (a "decided"
   block), keeping this algorithm purely shared-memory. *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_obs

let region = "disk"

let dblock_reg q = Printf.sprintf "dblock.%d" q

let decided_reg q = Printf.sprintf "decided.%d" q

let encode_block ~mbal ~bal ~inp =
  Codec.join3 (Codec.int_field mbal) (Codec.int_field bal) inp

let decode_block s =
  match Codec.split3 s with
  | None -> None
  | Some (mb, b, inp) -> (
      match (Codec.int_of_field mb, Codec.int_of_field b) with
      | Some mbal, Some bal -> Some (mbal, bal, inp)
      | _ -> None)

type config = {
  f_m : int option;
  max_rounds : int;
  poll_interval : float; (* follower poll of decided blocks *)
  max_polls : int;
}

let default_config =
  { f_m = None; max_rounds = 64; poll_interval = 5.0; max_polls = 400 }

let setup_regions cluster =
  let n = Cluster.n cluster in
  let registers =
    List.init n dblock_reg @ List.init n decided_reg
  in
  Cluster.add_region_everywhere cluster ~name:region
    ~perm:(Permission.all_readwrite ~n) ~registers

(* One round trip to disk [mem]: write own block, then read the blocks of
   every other process in one batched read. *)
type disk_round = Disk_ok of (int * int * string) option array | Disk_failed

let disk_round_chain (ctx : _ Cluster.ctx) ~mem ~block result =
  let n = ctx.Cluster.cluster_n in
  let me = ctx.Cluster.pid in
  let client = ctx.Cluster.client in
  let w = Memclient.write client ~mem ~region ~reg:(dblock_reg me) block in
  match w with
  | Memory.Nak -> Ivar.fill result Disk_failed
  | Memory.Ack -> (
      let others = List.filter (fun q -> q <> me) (List.init n Fun.id) in
      let r =
        Ivar.await
          (Memory.read_many_async
             (Memclient.mem client mem)
             ~from:me ~region
             ~regs:(List.map dblock_reg others))
      in
      match r with
      | Memory.Read_many_nak -> Ivar.fill result Disk_failed
      | Memory.Read_many values ->
          let info = Array.make n None in
          List.iteri
            (fun idx q ->
              info.(q) <- Option.bind values.(idx) decode_block)
            others;
          Ivar.fill result (Disk_ok info))
[@@simlint.allow
  "F1 disk paxos self-fences: the Ack branch immediately issues an \
   awaited same-QP batched read-back, which orders behind this write \
   under every model, so by the time the round returns the write is \
   remotely visible (EXPERIMENTS.md W2)"]

type handle = { decision : Report.decision Ivar.t }

let decision h = h.decision

let decide_now (ctx : _ Cluster.ctx) decision value =
  if
    Ivar.try_fill decision
      { Report.value; at = Engine.now ctx.Cluster.ctx_engine }
  then
    Obs.event
      (Engine.obs ctx.Cluster.ctx_engine)
      ~actor:(Printf.sprintf "p%d" ctx.Cluster.pid)
      (Event.Decide { pid = ctx.Cluster.pid; value })

(* Publish the decision on the disks so followers can learn it without
   messages; best effort (majority ack). *)
let publish_decision (ctx : _ Cluster.ctx) value =
  ignore
    (Memclient.write_quorum ctx.Cluster.client ~region
       ~reg:(decided_reg ctx.Cluster.pid) value)

(* Followers poll the decided blocks, rotating over the disks (a decided
   value reaches a majority of them, so rotation finds it). *)
let poller (ctx : _ Cluster.ctx) cfg decision =
  let n = ctx.Cluster.cluster_n in
  let m = ctx.Cluster.cluster_m in
  let me = ctx.Cluster.pid in
  let all_decided = List.init n decided_reg in
  let polls = ref 0 in
  let continue = ref true in
  while !continue do
    if Ivar.is_full decision then continue := false
    else begin
      incr polls;
      if !polls > cfg.max_polls then continue := false
      else begin
        let disk = Memclient.mem ctx.Cluster.client (!polls mod m) in
        let response =
          Ivar.await_timeout
            (Memory.read_many_async disk ~from:me ~region ~regs:all_decided)
            (2.0 *. cfg.poll_interval)
        in
        let found =
          match response with
          | Some (Memory.Read_many values) ->
              Array.fold_left
                (fun acc v -> match acc with Some _ -> acc | None -> v)
                None values
          | _ -> None
        in
        match found with
        | Some v ->
            decide_now ctx decision v;
            continue := false
        | None -> Engine.sleep cfg.poll_interval
      end
    end
  done

let proposer (ctx : _ Cluster.ctx) cfg ~input decision =
  let n = ctx.Cluster.cluster_n in
  let m = ctx.Cluster.cluster_m in
  let me = ctx.Cluster.pid in
  let f_m = match cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  if quorum <= 0 then invalid_arg "Disk_paxos: bad f_m";
  let round = ref 0 in
  let bal = ref 0 in
  let inp = ref input in
  let continue = ref true in
  (* Run one write+read-all round on every disk; [Some info] on success
     with the merged view of all blocks, [None] if a higher mbal was seen
     or too many disk chains failed. *)
  let run_round ~mbal ~block =
    let chains = Array.init m (fun _ -> Ivar.create ()) in
    for i = 0 to m - 1 do
      ctx.Cluster.spawn_sub
        (Printf.sprintf "disk.chain%d" i)
        (fun () -> disk_round_chain ctx ~mem:i ~block chains.(i))
    done;
    let completed = Par.await_k chains quorum in
    if List.exists (fun (_, r) -> r = Disk_failed) completed then None
    else begin
      let merged = Array.make n None in
      let higher = ref false in
      List.iter
        (fun (_, r) ->
          match r with
          | Disk_failed -> ()
          | Disk_ok info ->
              Array.iteri
                (fun q blk ->
                  match blk with
                  | None -> ()
                  | Some (mb, b, v) ->
                      if mb > mbal then higher := true;
                      (match merged.(q) with
                      | Some (_, b0, _) when b0 >= b -> ()
                      | _ -> merged.(q) <- Some (mb, b, v)))
                info)
        completed;
      if !higher then None else Some merged
    end
  in
  while !continue do
    Omega.wait_until_leader ctx.Cluster.ctx_omega ~me;
    if Ivar.is_full decision then continue := false
    else begin
      incr round;
      if !round > cfg.max_rounds then continue := false
      else begin
        let mbal = (!round * n) + me + 1 in
        (* Phase 1 — skipped when p0 still owns the initial ballot. *)
        let phase1_ok =
          if me = 0 && !round = 1 then true
          else
            match run_round ~mbal ~block:(encode_block ~mbal ~bal:!bal ~inp:!inp) with
            | None -> false
            | Some merged ->
                let best = ref None in
                Array.iter
                  (function
                    | Some (_, b, v) when b > 0 -> (
                        match !best with
                        | Some (b0, _) when b0 >= b -> ()
                        | _ -> best := Some (b, v))
                    | _ -> ())
                  merged;
                (match !best with Some (_, v) -> inp := v | None -> ());
                true
        in
        if phase1_ok then begin
          (* Phase 2: commit (mbal, mbal, inp); the read-back in the round
             is what makes Disk Paxos 4-deciding instead of 2. *)
          bal := mbal;
          match run_round ~mbal ~block:(encode_block ~mbal ~bal:mbal ~inp:!inp) with
          | None -> ()
          | Some _ ->
              decide_now ctx decision !inp;
              publish_decision ctx !inp;
              continue := false
        end
      end
    end
  done

let spawn cluster ?(cfg = default_config) ~pid ~input () =
  let decision = Ivar.create () in
  Cluster.spawn cluster ~pid (fun ctx ->
      ctx.Cluster.spawn_sub "disk.poller" (fun () -> poller ctx cfg decision);
      proposer ctx cfg ~input decision);
  { decision }

let run ?(cfg = default_config) ?(seed = 1) ?(faults = []) ?(prepare = fun _ -> ()) ~n ~m ~inputs () =
  if Array.length inputs <> n then invalid_arg "Disk_paxos.run: |inputs| <> n";
  let cluster = Cluster.create ~seed ~n ~m () in
  setup_regions cluster;
  let handles = Array.init n (fun pid -> spawn cluster ~cfg ~pid ~input:inputs.(pid) ()) in
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let decisions = Array.map (fun h -> Ivar.peek h.decision) handles in
  Report.of_stats ~algorithm:"disk-paxos" ~n ~m ~decisions
    ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
    ~steps:(Engine.steps (Cluster.engine cluster)) ()
