(* Uniform run reports.

   Every algorithm runner produces a [Report.t]: per-process decisions
   with their virtual decision times (= delay counts, since one network
   delay is the time unit), plus the substrate counters.  The property
   checks used throughout the tests and benches live here too. *)

open Rdma_sim
open Rdma_obs

type decision = { value : string; at : float }

(* One protocol phase's latency distribution over the run, distilled from
   the telemetry histograms (spans recorded under ~cat:"phase"). *)
type phase = {
  phase : string;
  count : int;
  p50 : float;
  p90 : float;
  p99 : float;
  worst : float;
}

type t = {
  algorithm : string;
  n : int;
  m : int;
  decisions : decision option array;
  messages : int;
  mem_ops : int;
  signatures : int;
  verifications : int;
  sim_steps : int;
  wall_events : int;
  named : (string * int) list; (* snapshot of the named counters *)
  phases : phase list; (* per-phase latency breakdown, sorted by name *)
}

let phases_of_obs obs =
  List.map
    (fun (name, (s : Hist.summary)) ->
      {
        phase = name;
        count = s.Hist.count;
        p50 = s.Hist.p50;
        p90 = s.Hist.p90;
        p99 = s.Hist.p99;
        worst = s.Hist.max;
      })
    (Obs.summaries ~cat:"phase" obs)

let of_stats ?obs ~algorithm ~n ~m ~decisions ~(stats : Stats.t) ~steps () =
  {
    algorithm;
    n;
    m;
    decisions;
    messages = stats.Stats.messages_sent;
    mem_ops = Stats.mem_ops stats;
    signatures = stats.Stats.signatures;
    verifications = stats.Stats.verifications;
    sim_steps = steps;
    wall_events = steps;
    named = Stats.named_sorted stats;
    phases = (match obs with None -> [] | Some obs -> phases_of_obs obs);
  }

let named t key =
  match List.assoc_opt key t.named with Some v -> v | None -> 0

let decided t =
  Array.to_list t.decisions |> List.filter_map Fun.id

let decided_count t = List.length (decided t)

(* Uniform agreement over the processes that decided; the caller excludes
   Byzantine processes before building the report if needed. *)
let agreement_ok ?(ignore_pids = []) t =
  let values =
    Array.to_list t.decisions
    |> List.mapi (fun pid d -> (pid, d))
    |> List.filter (fun (pid, _) -> not (List.mem pid ignore_pids))
    |> List.filter_map (fun (_, d) -> Option.map (fun d -> d.value) d)
  in
  match List.sort_uniq String.compare values with [] | [ _ ] -> true | _ -> false

(* Validity: every decision is some process's input. *)
let validity_ok ?(ignore_pids = []) t ~inputs =
  Array.to_list t.decisions
  |> List.mapi (fun pid d -> (pid, d))
  |> List.for_all (fun (pid, d) ->
         List.mem pid ignore_pids
         ||
         match d with
         | None -> true
         | Some d -> Array.exists (String.equal d.value) inputs)

(* Earliest decision time — the paper's "k-deciding" metric: some process
   decides within k delays. *)
let first_decision_time t =
  decided t |> List.map (fun d -> d.at)
  |> function [] -> None | ts -> Some (List.fold_left min infinity ts)

let last_decision_time t =
  decided t |> List.map (fun d -> d.at)
  |> function [] -> None | ts -> Some (List.fold_left max neg_infinity ts)

let decision_value t =
  match decided t with [] -> None | d :: _ -> Some d.value

let pp ppf t =
  Fmt.pf ppf "%s n=%d m=%d decided=%d/%d first=%a msgs=%d memops=%d signs=%d"
    t.algorithm t.n t.m (decided_count t) t.n
    Fmt.(option ~none:(any "-") (fmt "%.1f"))
    (first_decision_time t) t.messages t.mem_ops t.signatures

let pp_phase ppf p =
  Fmt.pf ppf "%-20s n=%-5d p50=%-8.2f p90=%-8.2f p99=%-8.2f worst=%.2f"
    p.phase p.count p.p50 p.p90 p.p99 p.worst

let pp_phases ppf t =
  match t.phases with
  | [] -> Fmt.pf ppf "(no phase telemetry)"
  | ps -> Fmt.(list ~sep:(any "@\n") pp_phase) ppf ps
