(* An ibverbs-flavoured facade over the simulated memory — the RDMA
   mechanics of Section 7 ("RDMA in practice").

   - A memory node exposes a NIC.
   - Memory regions are *registered* within a protection domain with an
     access level; registration yields a region-specific rkey.
   - Queue pairs connect one remote process to the NIC within a
     protection domain; a queue pair can reach a registered region only
     if both live in the same protection domain and the caller presents
     the region's rkey.
   - Deregistering a region revokes access instantly — the paper's
     dynamic permission revocation ("p can revoke permissions dynamically
     by simply deregistering the memory region").

   The facade is the trusted kernel of Section 7: it installs permissions
   directly (process programs cannot call it with another process's
   queue pair, because a queue pair capability carries its owner). *)

open Rdma_sim
open Rdma_obs

type access = Remote_read | Remote_write | Remote_read_write

type nic = { memory : Memory.t; mutable next_key : int; mutable next_pd : int }

type pd = { nic : nic; pd_id : int }

type mr = {
  pd : pd;
  mr_name : string; (* the underlying region *)
  rkey : string;
  access : access;
  grantees : int list;
  mutable registered : bool;
}

type qp = { qp_pd : pd; remote : int }

let nic memory = { memory; next_key = 0; next_pd = 0 }

(* Registration-table changes are control-plane events on the memory's
   track: chrome traces show revocations lining up with the naks they
   cause. *)
let emit_mr memory ~region op =
  Obs.event (Memory.obs memory)
    ~actor:(Printf.sprintf "mu%d" (Memory.id memory))
    (Event.Verbs_mr { mid = Memory.id memory; region; op })

let nic_memory t = t.memory

(* pd ids are per-NIC, not global: a module-level counter would be
   shared mutable state across pooled task domains and would make rkeys
   depend on task interleaving. *)
let alloc_pd nic =
  nic.next_pd <- nic.next_pd + 1;
  { nic; pd_id = nic.next_pd }

let perm_of_access ~access ~grantees =
  match access with
  | Remote_read -> Permission.make ~read:grantees ()
  | Remote_write -> Permission.make ~write:grantees ()
  | Remote_read_write -> Permission.make ~readwrite:grantees ()

(* Register a memory region: creates the region on the memory with the
   permission implied by (access, grantees) and mints its rkey. *)
let reg_mr pd ~name ~registers ~access ~grantees =
  pd.nic.next_key <- pd.nic.next_key + 1;
  let rkey = Printf.sprintf "rkey-%d-%d-%d" pd.pd_id pd.nic.next_key (Hashtbl.hash name) in
  Memory.add_region pd.nic.memory ~name
    ~perm:(perm_of_access ~access ~grantees)
    ~registers;
  emit_mr pd.nic.memory ~region:name "reg";
  { pd; mr_name = name; rkey; access; grantees; registered = true }

let rkey mr = mr.rkey

let mr_region mr = mr.mr_name

(* Deregistration = instant revocation: the region's permission becomes
   empty, so in-flight and future operations nak. *)
let dereg_mr mr =
  if mr.registered then begin
    mr.registered <- false;
    Memory.force_permission mr.pd.nic.memory ~region:mr.mr_name ~perm:Permission.none;
    emit_mr mr.pd.nic.memory ~region:mr.mr_name "dereg"
  end

(* Re-register an existing region (e.g. to hand exclusive write access to
   a new proposer, as in the paper's crash-consensus deployment notes). *)
let rereg_mr mr ~access ~grantees =
  mr.pd.nic.next_key <- mr.pd.nic.next_key + 1;
  let rkey =
    Printf.sprintf "rkey-%d-%d-%d" mr.pd.pd_id mr.pd.nic.next_key
      (Hashtbl.hash mr.mr_name)
  in
  Memory.force_permission mr.pd.nic.memory ~region:mr.mr_name
    ~perm:(perm_of_access ~access ~grantees);
  emit_mr mr.pd.nic.memory ~region:mr.mr_name "rereg";
  let mr' = { mr with rkey; access; grantees; registered = true } in
  mr.registered <- false;
  mr'

let create_qp pd ~remote = { qp_pd = pd; remote }

let qp_remote qp = qp.remote

(* A queue pair operation checks: same protection domain, a live
   registration, and the right rkey — then defers to the memory, whose
   own permission check enforces the access level for this caller. *)
let qp_mr_compatible qp mr key =
  mr.registered && qp.qp_pd.pd_id = mr.pd.pd_id && String.equal key mr.rkey

let rdma_read qp mr ~rkey ~reg =
  if not (qp_mr_compatible qp mr rkey) then Ivar.full Memory.Read_nak
  else
    Memory.read_async qp.qp_pd.nic.memory ~from:qp.remote ~region:mr.mr_name ~reg

let rdma_write qp mr ~rkey ~reg value =
  if not (qp_mr_compatible qp mr rkey) then Ivar.full Memory.Nak
  else
    Memory.write_async qp.qp_pd.nic.memory ~from:qp.remote ~region:mr.mr_name ~reg
      value

(* RDMA FLUSH (the ibverbs flush extension): completes once every prior
   op of this queue pair has been applied at the remote memory.  A fence
   is QP-scoped, not MR-scoped, so it needs no rkey and survives
   deregistration races — flushing after a revocation is how a prudent
   issuer learns whether its acked writes actually landed. *)
let rdma_flush qp = Memory.fence_async qp.qp_pd.nic.memory ~from:qp.remote
