(** An ibverbs-flavoured facade over the simulated memory — the RDMA
    mechanics of Section 7: protection domains, memory-region
    registration with rkeys, queue pairs, and revocation by
    deregistration.  This layer models the trusted kernel. *)

open Rdma_sim

type access = Remote_read | Remote_write | Remote_read_write

type nic

type pd

(** A registered memory region with its rkey. *)
type mr

(** A connection of one remote process to the NIC within a protection
    domain. *)
type qp

val nic : Memory.t -> nic

val nic_memory : nic -> Memory.t

val alloc_pd : nic -> pd

(** Register a region for the [grantees] at the given access level;
    mints the region's rkey. *)
val reg_mr :
  pd -> name:string -> registers:string list -> access:access -> grantees:int list -> mr

val rkey : mr -> string

val mr_region : mr -> string

(** Deregistration = instant revocation: future operations nak. *)
val dereg_mr : mr -> unit

(** Re-register with new access/grantees, minting a fresh rkey and
    invalidating the old one. *)
val rereg_mr : mr -> access:access -> grantees:int list -> mr

val create_qp : pd -> remote:int -> qp

val qp_remote : qp -> int

(** RDMA read through a queue pair: checked against the protection
    domain, the registration, and the rkey, then against the region's
    permission for this caller. *)
val rdma_read : qp -> mr -> rkey:string -> reg:string -> Memory.read_result Ivar.t

val rdma_write :
  qp -> mr -> rkey:string -> reg:string -> string -> Memory.op_result Ivar.t

(** RDMA FLUSH (the ibverbs flush extension): completes once every prior
    operation of this queue pair has been applied at the remote memory.
    QP-scoped (no rkey needed).  Free under {!Ordering.Strict}. *)
val rdma_flush : qp -> Memory.op_result Ivar.t
