(** A simulated shared-memory node (one µ_i of Section 3): registers
    grouped into regions, permissions checked at the memory, crash
    failures that make operations hang forever.

    Timing follows the paper's delay metric: an operation issued at time
    [t] applies at the memory at [t + one_way] and its response arrives at
    [t + 2 * one_way]. *)

open Rdma_sim

type op_result = Ack | Nak

type read_result = Read of string option | Read_nak

type t

val create :
  ?one_way:float ->
  ?legal_change:Permission.legal_change ->
  engine:Engine.t ->
  stats:Stats.t ->
  mid:int ->
  unit ->
  t

val id : t -> int

(** The engine's telemetry collector (every operation records a typed
    event on this memory's [mu<mid>] track and a [mem.*] span). *)
val obs : t -> Rdma_obs.Obs.t

(** Crash the memory: every outstanding and future operation hangs. *)
val crash : t -> unit

val is_crashed : t -> bool

(** [add_region t ~name ~perm ~registers] creates a region.  Each register
    may belong to only one region (the convention our algorithms use);
    registers are initialized to ⊥ ([None]). *)
val add_region :
  t -> name:string -> perm:Permission.t -> registers:string list -> unit

(** Zero-delay inspection, for tests and traces only. *)
val peek_register : t -> string -> string option

val region_perm : t -> string -> Permission.t option

val region_names : t -> string list

(** Kernel-side permission override, bypassing [legal_change] (the Verbs
    facade models the trusted kernel of Section 7).  Untrusted programs
    must use {!change_permission_async}. *)
val force_permission : t -> region:string -> perm:Permission.t -> unit

(** Timed write; the ivar fills with the result two one-way delays later
    (never, if the memory crashes). *)
val write_async :
  t -> from:int -> region:string -> reg:string -> string -> op_result Ivar.t

val read_async : t -> from:int -> region:string -> reg:string -> read_result Ivar.t

type read_many_result = Read_many of string option array | Read_many_nak

(** Batched read of several registers of one region in a single timed
    operation — an RDMA read of a contiguous slot array (Section 7). *)
val read_many_async :
  t -> from:int -> region:string -> regs:string list -> read_many_result Ivar.t

(** [changePermission]: the memory evaluates its [legal_change] policy on
    arrival; [Nak] means the request was refused and nothing changed. *)
val change_permission_async :
  t -> from:int -> region:string -> perm:Permission.t -> op_result Ivar.t
