(** A simulated shared-memory node (one µ_i of Section 3): registers
    grouped into regions, permissions checked at the memory, crash
    failures that make operations hang forever.

    Beyond the paper's crash-stop memories, a crashed memory can
    {!restart} under a fresh {e epoch}, coming back empty: register
    contents and legalChange-granted permissions are lost.  Permissions
    and registers are epoch-stamped — a stale grant never serves, and a
    stale (lost) register naks reads until a current-epoch write repairs
    it, so an amnesiac replica answers "I don't know" rather than serving
    lost state as ⊥.

    Timing follows the paper's delay metric: an operation issued at time
    [t] applies at the memory at [t + one_way] and its response arrives
    at [t + 2 * one_way] — under the default {!Ordering.Strict} model.
    The weaker models ({!Ordering.Completion_lag},
    {!Ordering.Reorder_qp}) decouple apply from completion per the mode
    semantics in {!Ordering}; {!fence_async} is the explicit flush. *)

open Rdma_sim

type op_result = Ack | Nak

type read_result = Read of string option | Read_nak

type t

(** [ordering] is the memory-ordering model (default {!Ordering.Strict});
    [seed] keys the per-memory stream the weak modes draw their per-op
    lag/reorder decisions from — pass the run's seed so chaos schedules
    replay to identical decisions. *)
val create :
  ?one_way:float ->
  ?legal_change:Permission.legal_change ->
  ?ordering:Ordering.mode ->
  ?seed:int ->
  engine:Engine.t ->
  stats:Stats.t ->
  mid:int ->
  unit ->
  t

val id : t -> int

val ordering : t -> Ordering.mode

(** Install an ordering model; meant for schedule install time (t = 0) —
    the per-op decision stream is shared across modes, so switching
    mid-run is deterministic but changes subsequent draws. *)
val set_ordering : t -> Ordering.mode -> unit

(** The engine's telemetry collector (every operation records a typed
    event on this memory's [mu<mid>] track and a [mem.*] span). *)
val obs : t -> Rdma_obs.Obs.t

(** The substrate-wide counters this memory reports into. *)
val stats : t -> Stats.t

(** Crash the memory: every outstanding and future operation hangs. *)
val crash : t -> unit

val is_crashed : t -> bool

(** The current epoch: 0 at creation, incremented by each {!restart}. *)
val epoch : t -> int

(** Restart a crashed memory under a fresh epoch.  All register contents
    are lost (stale until rewritten) and in-flight pre-crash operations
    are dropped for good.  [`Genesis] (default) has the trusted kernel
    restore each region's creation-time permission, as a NIC driver
    re-registers configured regions on reboot; [`Quarantine] leaves every
    region fenced — nak-ing all operations — until a permission is
    re-established at the new epoch via {!change_permission_async} (which
    shows [legal_change] a [Permission.none] current state) or
    {!force_permission}.  Raises [Invalid_argument] if the memory is not
    crashed. *)
val restart : ?rejoin:[ `Genesis | `Quarantine ] -> t -> unit

(** [add_region t ~name ~perm ~registers] creates a region.  Each register
    may belong to only one region (the convention our algorithms use);
    registers are initialized to ⊥ ([None]). *)
val add_region :
  t -> name:string -> perm:Permission.t -> registers:string list -> unit

(** Zero-delay inspection, for tests and traces only. *)
val peek_register : t -> string -> string option

(** Whether the register's last write is from the current epoch.  A stale
    register is state lost in a restart and not yet repaired: reads nak
    on it.  Zero-delay; for tests and the chaos oracle. *)
val register_fresh : t -> string -> bool

(** The region's registers still awaiting repair (sorted).  Empty means
    the region is fully re-replicated.  Zero-delay; for tests and the
    chaos oracle. *)
val stale_registers : t -> region:string -> string list

val region_perm : t -> string -> Permission.t option

(** Whether the region's permission was granted in the current epoch —
    false while a restarted region is still fenced. *)
val region_serving : t -> string -> bool

val region_names : t -> string list

(** Kernel-side permission override, bypassing [legal_change] (the Verbs
    facade models the trusted kernel of Section 7).  Untrusted programs
    must use {!change_permission_async}.  The grant is stamped with the
    current epoch. *)
val force_permission : t -> region:string -> perm:Permission.t -> unit

(** Timed write; the ivar fills with the result two one-way delays later
    (never, if the memory crashes).  A successful write stamps the
    register with the current epoch, repairing it if it was stale. *)
val write_async :
  t -> from:int -> region:string -> reg:string -> string -> op_result Ivar.t

val read_async : t -> from:int -> region:string -> reg:string -> read_result Ivar.t

type read_many_result = Read_many of string option array | Read_many_nak

(** Batched read of several registers of one region in a single timed
    operation — an RDMA read of a contiguous slot array (Section 7).
    Naks if any requested register is stale. *)
val read_many_async :
  t -> from:int -> region:string -> regs:string list -> read_many_result Ivar.t

(** Batched write of several registers of one region in one timed
    operation ([None] stores ⊥).  Stamps every named register with the
    current epoch — the snapshot-installation / state-transfer
    primitive. *)
val write_many_async :
  t ->
  from:int ->
  region:string ->
  values:(string * string option) list ->
  op_result Ivar.t

(** [changePermission]: the memory evaluates its [legal_change] policy on
    arrival; [Nak] means the request was refused and nothing changed.
    After a restart the forgotten pre-crash grant is presented to the
    policy as [Permission.none]. *)
val change_permission_async :
  t -> from:int -> region:string -> perm:Permission.t -> op_result Ivar.t

(** Explicit flush (the RDMA FLUSH / read-after-write fence): the
    returned ivar fills with [Ack] only once every operation [from]
    issued to this memory {e before} the fence has been applied, and
    later ops of the QP cannot overtake it.  Under {!Ordering.Strict}
    this is a free no-op (an already-full ivar, no event, no delay), so
    algorithms fence unconditionally at no strict-mode cost. *)
val fence_async : t -> from:int -> op_result Ivar.t
