(** Process-side capability for accessing the shared memories.  Bound to
    one process id: a Byzantine program holding it can only act as
    itself. *)

open Rdma_sim

type t

val create : pid:int -> memories:Memory.t array -> t

val pid : t -> int

(** The shared telemetry collector ([None] when there are no memories). *)
val obs : t -> Rdma_obs.Obs.t option

val memory_count : t -> int

val mem : t -> int -> Memory.t

(** ⌊m/2⌋ + 1. *)
val majority : t -> int

(** {2 Single-memory blocking operations} *)

val write : t -> mem:int -> region:string -> reg:string -> string -> Memory.op_result
[@@sim.yields]

val read : t -> mem:int -> region:string -> reg:string -> Memory.read_result
[@@sim.yields]

val change_permission :
  t -> mem:int -> region:string -> perm:Permission.t -> Memory.op_result
[@@sim.yields]

(** {2 Parallel all-memories operations} *)

val write_all_async :
  t -> region:string -> reg:string -> string -> Memory.op_result Ivar.t array

val read_all_async : t -> region:string -> reg:string -> Memory.read_result Ivar.t array

val change_permission_all_async :
  t -> region:string -> perm:Permission.t -> Memory.op_result Ivar.t array

(** Write to every memory, wait for [k] responses (default majority);
    [Ack] iff all received responses were acks. *)
val write_quorum :
  ?k:int -> t -> region:string -> reg:string -> string -> Memory.op_result
[@@sim.yields]

(** Read from every memory, wait for [k] responses (default majority);
    returns [(memory index, result)] pairs. *)
val read_quorum :
  ?k:int -> t -> region:string -> reg:string -> (int * Memory.read_result) list
[@@sim.yields]

val change_permission_quorum :
  ?k:int -> t -> region:string -> perm:Permission.t -> (int * Memory.op_result) list
[@@sim.yields]

(** {2 Fences}

    The explicit flush of the weak ordering models ({!Ordering}): a
    fence on a memory completes once every op this client issued there
    before it has been applied.  Under {!Ordering.Strict} all three
    entry points short-circuit — no span, no suspension, no engine
    event — so unconditional fences cost nothing in the strict model. *)

val fence : t -> mem:int -> Memory.op_result [@@sim.yields]

val fence_all_async : t -> Memory.op_result Ivar.t array

(** Fence every memory, wait for [k] (default majority): on return the
    client's prior writes are {e applied} — not merely acked — at [k]
    memories. *)
val fence_quorum : ?k:int -> t -> Memory.op_result [@@sim.yields]

(** {2 State transfer} *)

(** Blocking batched write of several registers of one region to a single
    memory ([None] stores ⊥) — the snapshot-installation primitive. *)
val write_many :
  t ->
  mem:int ->
  region:string ->
  values:(string * string option) list ->
  Memory.op_result
[@@sim.yields]

(** {2 Bounded-time quorum operations}

    The plain quorum ops hang forever when a majority of memories is
    down (the paper's semantics).  These variants bound the wait with a
    virtual-time [deadline] (default 64 delays): each attempt re-issues
    the operation to every memory and waits one exponentially growing
    backoff window (initial [backoff], default 4 delays, doubling per
    attempt, clamped to the remaining deadline), then returns a typed
    [Timeout] once the deadline is spent.  Per-operation [.retries] and
    [.timeouts] counters flow through the telemetry counters (metrics
    export) and the substrate stats ([Report.t] named counters). *)

type 'a timed = Done of 'a | Timeout of { attempts : int; waited : float }

val write_quorum_timed :
  ?k:int ->
  ?deadline:float ->
  ?backoff:float ->
  t ->
  region:string ->
  reg:string ->
  string ->
  Memory.op_result timed
[@@sim.yields]

val read_quorum_timed :
  ?k:int ->
  ?deadline:float ->
  ?backoff:float ->
  t ->
  region:string ->
  reg:string ->
  (int * Memory.read_result) list timed
[@@sim.yields]

val change_permission_quorum_timed :
  ?k:int ->
  ?deadline:float ->
  ?backoff:float ->
  t ->
  region:string ->
  perm:Permission.t ->
  (int * Memory.op_result) list timed
[@@sim.yields]
