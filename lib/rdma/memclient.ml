(* Process-side capability for accessing the shared memories.

   A [Memclient.t] is bound to one process id at creation: every operation
   it issues carries that id, so a Byzantine *program* holding the
   capability can still only act as itself (the permission check at the
   memory sees the true caller).

   Blocking single-memory operations plus the parallel patterns the
   paper's algorithms use (issue to all memories, wait for a quorum). *)

open Rdma_sim
open Rdma_obs

type t = { pid : int; actor : string; obs : Obs.t option; memories : Memory.t array }

let create ~pid ~memories =
  {
    pid;
    actor = Printf.sprintf "p%d" pid;
    (* All memories share one engine, hence one collector. *)
    obs = (if Array.length memories = 0 then None else Some (Memory.obs memories.(0)));
    memories;
  }

(* Client-side span around a blocking operation: the caller's view of the
   round trip, on the process track (the memory-side [mem.*] span sits on
   the memory track). *)
let client_span t name f =
  match t.obs with
  | None -> f ()
  | Some obs -> Obs.with_span obs ~actor:t.actor ~cat:"rdma" name f

let pid t = t.pid

let memory_count t = Array.length t.memories

let mem t i = t.memories.(i)

(* Majority of the memories: ⌊m/2⌋ + 1. *)
let majority t = (Array.length t.memories / 2) + 1

(* {2 Single-memory blocking operations} *)

let write t ~mem ~region ~reg value =
  client_span t "rdma.write" (fun () ->
      Ivar.await
        (Memory.write_async t.memories.(mem) ~from:t.pid ~region ~reg value))

let read t ~mem ~region ~reg =
  client_span t "rdma.read" (fun () ->
      Ivar.await (Memory.read_async t.memories.(mem) ~from:t.pid ~region ~reg))

let change_permission t ~mem ~region ~perm =
  client_span t "rdma.perm" (fun () ->
      Ivar.await
        (Memory.change_permission_async t.memories.(mem) ~from:t.pid ~region ~perm))

(* {2 Parallel all-memories operations} *)

let write_all_async t ~region ~reg value =
  Array.map (fun m -> Memory.write_async m ~from:t.pid ~region ~reg value) t.memories

let read_all_async t ~region ~reg =
  Array.map (fun m -> Memory.read_async m ~from:t.pid ~region ~reg) t.memories

let change_permission_all_async t ~region ~perm =
  Array.map (fun m -> Memory.change_permission_async m ~from:t.pid ~region ~perm) t.memories

(* [write_quorum t ~k ~region ~reg v] writes to every memory and waits for
   [k] responses (default: a majority).  Returns [Ack] iff every response
   received was an ack — a nak means some memory refused (permission lost),
   which the paper's algorithms treat as "give up". *)
let write_quorum ?k t ~region ~reg value =
  let k = Option.value k ~default:(majority t) in
  client_span t "rdma.write_quorum" (fun () ->
      let responses = Par.await_k (write_all_async t ~region ~reg value) k in
      if List.for_all (fun (_, r) -> r = Memory.Ack) responses then Memory.Ack
      else Memory.Nak)

(* [read_quorum t ~region ~reg] reads from every memory, waits for [k]
   responses, and returns them as [(memory index, result)] pairs. *)
let read_quorum ?k t ~region ~reg =
  let k = Option.value k ~default:(majority t) in
  client_span t "rdma.read_quorum" (fun () ->
      Par.await_k (read_all_async t ~region ~reg) k)

let change_permission_quorum ?k t ~region ~perm =
  let k = Option.value k ~default:(majority t) in
  client_span t "rdma.perm_quorum" (fun () ->
      Par.await_k (change_permission_all_async t ~region ~perm) k)
