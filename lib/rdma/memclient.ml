(* Process-side capability for accessing the shared memories.

   A [Memclient.t] is bound to one process id at creation: every operation
   it issues carries that id, so a Byzantine *program* holding the
   capability can still only act as itself (the permission check at the
   memory sees the true caller).

   Blocking single-memory operations plus the parallel patterns the
   paper's algorithms use (issue to all memories, wait for a quorum). *)

open Rdma_sim
open Rdma_obs

type t = {
  pid : int;
  actor : string;
  obs : Obs.t option;
  stats : Stats.t option;
  memories : Memory.t array;
}

let create ~pid ~memories =
  {
    pid;
    actor = Printf.sprintf "p%d" pid;
    (* All memories share one engine, hence one collector and one stats
       table. *)
    obs = (if Array.length memories = 0 then None else Some (Memory.obs memories.(0)));
    stats =
      (if Array.length memories = 0 then None
       else Some (Memory.stats memories.(0)));
    memories;
  }

(* Client-side span around a blocking operation: the caller's view of the
   round trip, on the process track (the memory-side [mem.*] span sits on
   the memory track). *)
let client_span t name f =
  match t.obs with
  | None -> f ()
  | Some obs -> Obs.with_span obs ~actor:t.actor ~cat:"rdma" name f

let pid t = t.pid

let obs t = t.obs

let memory_count t = Array.length t.memories

let mem t i = t.memories.(i)

(* Majority of the memories: ⌊m/2⌋ + 1. *)
let majority t = (Array.length t.memories / 2) + 1

(* {2 Single-memory blocking operations} *)

let write t ~mem ~region ~reg value =
  client_span t "rdma.write" (fun () ->
      Ivar.await
        (Memory.write_async t.memories.(mem) ~from:t.pid ~region ~reg value))

let read t ~mem ~region ~reg =
  client_span t "rdma.read" (fun () ->
      Ivar.await (Memory.read_async t.memories.(mem) ~from:t.pid ~region ~reg))

let change_permission t ~mem ~region ~perm =
  client_span t "rdma.perm" (fun () ->
      Ivar.await
        (Memory.change_permission_async t.memories.(mem) ~from:t.pid ~region ~perm))

(* {2 Parallel all-memories operations} *)

let write_all_async t ~region ~reg value =
  Array.map (fun m -> Memory.write_async m ~from:t.pid ~region ~reg value) t.memories

let read_all_async t ~region ~reg =
  Array.map (fun m -> Memory.read_async m ~from:t.pid ~region ~reg) t.memories

let change_permission_all_async t ~region ~perm =
  Array.map (fun m -> Memory.change_permission_async m ~from:t.pid ~region ~perm) t.memories

(* [write_quorum t ~k ~region ~reg v] writes to every memory and waits for
   [k] responses (default: a majority).  Returns [Ack] iff every response
   received was an ack — a nak means some memory refused (permission lost),
   which the paper's algorithms treat as "give up". *)
let write_quorum ?k t ~region ~reg value =
  let k = Option.value k ~default:(majority t) in
  client_span t "rdma.write_quorum" (fun () ->
      let responses = Par.await_k (write_all_async t ~region ~reg value) k in
      if List.for_all (fun (_, r) -> r = Memory.Ack) responses then Memory.Ack
      else Memory.Nak)

(* [read_quorum t ~region ~reg] reads from every memory, waits for [k]
   responses, and returns them as [(memory index, result)] pairs. *)
let read_quorum ?k t ~region ~reg =
  let k = Option.value k ~default:(majority t) in
  client_span t "rdma.read_quorum" (fun () ->
      Par.await_k (read_all_async t ~region ~reg) k)

let change_permission_quorum ?k t ~region ~perm =
  let k = Option.value k ~default:(majority t) in
  client_span t "rdma.perm_quorum" (fun () ->
      Par.await_k (change_permission_all_async t ~region ~perm) k)

(* {2 Fences}

   The explicit flush of the weak ordering models (see [Ordering]): a
   fence on a memory completes once every op this client issued there
   before the fence has been applied.  Under [Ordering.Strict] every
   per-memory fence is an already-full ivar, and the client-side
   wrappers below short-circuit entirely — no span, no suspension — so
   algorithms fence unconditionally at zero strict-mode cost. *)

let all_strict t =
  Array.for_all (fun m -> Memory.ordering m = Ordering.Strict) t.memories

let fence_all_async t =
  Array.map (fun m -> Memory.fence_async m ~from:t.pid) t.memories

let fence t ~mem =
  if Memory.ordering t.memories.(mem) = Ordering.Strict then Memory.Ack
  else
    client_span t "rdma.fence" (fun () ->
        Ivar.await (Memory.fence_async t.memories.(mem) ~from:t.pid))

(* Fence every memory and wait for [k] of them (default: a majority) —
   the companion of a quorum write: once it returns, the write has been
   *applied*, not merely acked, at k memories. *)
let fence_quorum ?k t =
  if all_strict t then Memory.Ack
  else begin
    let k = Option.value k ~default:(majority t) in
    client_span t "rdma.fence_quorum" (fun () ->
        let responses = Par.await_k (fence_all_async t) k in
        if List.for_all (fun (_, r) -> r = Memory.Ack) responses then Memory.Ack
        else Memory.Nak)
  end

(* {2 Single-memory batched write (state transfer)} *)

let write_many t ~mem ~region ~values =
  client_span t "rdma.write_many" (fun () ->
      Ivar.await
        (Memory.write_many_async t.memories.(mem) ~from:t.pid ~region ~values))

(* {2 Bounded-time quorum operations}

   The blocking quorum ops above implement the paper's semantics
   literally: with a majority of memories crashed they hang forever.
   The [_timed] variants bound the wait in *virtual* time — each attempt
   re-issues the operation to every memory and waits one exponentially
   growing backoff window; once the windows have consumed the deadline
   the op returns a typed [Timeout] instead of a result.  Retries and
   timeouts are counted per operation name, both in the telemetry
   counters (the metrics export) and in the substrate stats (the
   [Report.t] named counters). *)

type 'a timed = Done of 'a | Timeout of { attempts : int; waited : float }

let default_deadline = 64.0

let default_backoff = 4.0

let count t name n =
  (match t.obs with Some obs -> Obs.count obs name n | None -> ());
  match t.stats with
  | Some stats -> for _ = 1 to n do Stats.bump stats name done
  | None -> ()

(* One attempt per backoff window: [issue ()] fires the operation at
   every memory and the attempt succeeds when [k] of the fresh ivars fill
   within the window.  Re-issuing is safe — writes, reads and permission
   changes are all idempotent — and each abandoned attempt deregisters
   its quorum-wait callbacks, so late responses are dropped rather than
   queued. *)
let retry_quorum ?k ?(deadline = default_deadline) ?(backoff = default_backoff)
    t ~name issue =
  let k = Option.value k ~default:(majority t) in
  client_span t name (fun () ->
      let rec attempt n window waited =
        let responses = Par.await_k_timeout (issue ()) k window in
        if List.length responses >= k then Done responses
        else begin
          let waited = waited +. window in
          let remaining = deadline -. waited in
          if remaining > 0. then begin
            count t (name ^ ".retries") 1;
            attempt (n + 1) (Float.min (window *. 2.) remaining) waited
          end
          else begin
            count t (name ^ ".timeouts") 1;
            Timeout { attempts = n; waited }
          end
        end
      in
      attempt 1 (Float.min backoff deadline) 0.)

let write_quorum_timed ?k ?deadline ?backoff t ~region ~reg value =
  match
    retry_quorum ?k ?deadline ?backoff t ~name:"rdma.write_quorum" (fun () ->
        write_all_async t ~region ~reg value)
  with
  | Done responses ->
      if List.for_all (fun (_, r) -> r = Memory.Ack) responses then
        Done Memory.Ack
      else Done Memory.Nak
  | Timeout w -> Timeout w

let read_quorum_timed ?k ?deadline ?backoff t ~region ~reg =
  retry_quorum ?k ?deadline ?backoff t ~name:"rdma.read_quorum" (fun () ->
      read_all_async t ~region ~reg)

let change_permission_quorum_timed ?k ?deadline ?backoff t ~region ~perm =
  retry_quorum ?k ?deadline ?backoff t ~name:"rdma.perm_quorum" (fun () ->
      change_permission_all_async t ~region ~perm)
