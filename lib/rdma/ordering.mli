(** Pluggable RDMA memory-ordering models.

    The paper's delay metric treats a one-sided operation as an atomic
    request/response: it applies at the memory one one-way delay after
    issue, and its completion arrives one one-way later.  Real RDMA is
    weaker on two independent axes, and each gets a mode here:

    - {!Completion_lag} — a local completion does not imply remote
      delivery ("The Completion Fallacy", arXiv:2603.04774): the
      issuer's ivar resolves on the usual two-delay schedule, but the
      written bytes land at the remote memory a seeded virtual-time lag
      later, so a rival's read can miss a write whose completion the
      issuer already consumed.

    - {!Reorder_qp} — the NIC may apply in-flight operations of one
      queue pair out of issue order within a bounded virtual-time
      window (the relaxed orderings formalised in arXiv:2605.10631).
      Completions still mean "applied" in this mode; only the
      cross-operation order is perturbed.

    {!Strict} is the paper's model and the default.  Per-op lag/reorder
    decisions are drawn from a per-memory [Random.State] keyed on
    (seed, mid), so a chaos schedule replays to the exact same
    decisions under [-j N] and in shrunk repros. *)

type mode =
  | Strict  (** the paper's atomic request/response timing *)
  | Completion_lag of { max_lag : float }
      (** completions keep the strict two-delay schedule, but each
          write's state change lands a per-op lag drawn from
          [[0, max_lag)] after arrival (same-QP writes still apply in
          issue order, and same-QP reads wait for them — IB
          read-after-write ordering) *)
  | Reorder_qp of { window : float }
      (** each data op applies at arrival plus a per-op perturbation
          drawn from [[0, window)]; in-flight ops of one QP whose
          perturbations invert their arrival order apply out of issue
          order.  The completion is delivered one one-way after the
          (perturbed) apply, so a completion still implies delivery *)
[@@simlint.protocol]

(** Default lag bound: three strict round trips, enough for a rival's
    read issued after the completion to arrive before the bytes do. *)
val default_lag : float

(** Default reorder window: two strict round trips. *)
val default_window : float

(** [Completion_lag] / [Reorder_qp] at the default parameters. *)
val completion_lag : mode

val reorder_qp : mode

val equal : mode -> mode -> bool

(** The bare mode name: ["strict"], ["completion-lag"],
    ["reordered-qp"]. *)
val name : mode -> string

(** Round-trippable rendering: the name, plus [:<param>] when the
    parameter differs from nothing — e.g. ["completion-lag:6"]. *)
val to_string : mode -> string

(** Parse {!to_string} output and bare mode names (a missing parameter
    means the default); ["reordered-within-qp"] is accepted as an alias.
    [Error] carries a usage message. *)
val of_string : string -> (mode, string) result

val pp : Format.formatter -> mode -> unit
