(* A simulated (shared) memory node — one of the µ_i of Section 3.

   A memory holds registers grouped into named regions; each region has a
   permission checked *at the memory* when an operation arrives, so a
   Byzantine caller cannot bypass it — the trust placement of an RDMA NIC.

   Timing follows the paper's delay metric: an operation issued at time t
   arrives at the memory at t + one_way (permission check + state change
   happen atomically there) and its response reaches the caller at
   t + 2 * one_way.  A crashed memory never responds: the result ivar is
   simply never filled.

   Crash–recovery extends the paper's crash-stop memories: [restart]
   brings a crashed memory back *empty*, under a fresh epoch.  Nothing
   stored before the crash survives — register contents and the
   permission state granted through legalChange are both lost.  Epoch
   stamps enforce the two safety obligations of rejoin:

   - Region permissions carry the epoch at which they were granted.  A
     grant from a previous epoch is dead: every operation naks until the
     region's permission is re-established *at the current epoch* —
     either through [change_permission_async] (which shows legalChange a
     [Permission.none] current state, because the pre-crash grant is
     forgotten) or through the trusted-kernel [force_permission] path.
     A recovering memory can therefore never honour a stale grant.

   - Registers carry the epoch at which they were last written.  A
     register whose stamp predates the current epoch is *unrepaired*:
     reads (single or batched) nak on it, while fresh-epoch writes both
     store the value and repair the register.  An amnesiac replica thus
     answers "I don't know" instead of a silently-empty ⊥, so quorum
     readers can never mistake lost state for genuinely-unwritten state;
     repair is exactly "write the register back" (read-repair, snapshot
     installation), after which reads serve again. *)

open Rdma_sim
open Rdma_obs

type op_result = Ack | Nak

type read_result = Read of string option | Read_nak

type region = {
  region_name : string;
  registers : (string, unit) Hashtbl.t;
  mutable perm : Permission.t;
  (* the permission the region was created with; the kernel restores it
     on a [`Genesis] rejoin, as a NIC driver re-registers configured
     memory regions on reboot *)
  genesis : Permission.t;
  mutable granted_epoch : int;
}

(* Per-queue-pair ordering state, one QP per issuing process (Section 7
   pairs every process with every memory).  [floor] is the earliest
   instant a later op of this QP may apply — raised by each write under
   completion-lag (same-QP FIFO) and by fences; [horizon] is the latest
   apply instant assigned to any op of this QP, which is what a fence
   waits out. *)
type qp_state = { mutable floor : float; mutable horizon : float }

type t = {
  mid : int;
  engine : Engine.t;
  stats : Stats.t;
  obs : Obs.t;
  actor : string; (* "mu<mid>": this memory's telemetry track *)
  legal_change : Permission.legal_change;
  one_way : float;
  mutable crashed : bool;
  mutable epoch : int;
  regions : (string, region) Hashtbl.t;
  (* register -> (epoch of last write, value) *)
  store : (string, int * string option) Hashtbl.t;
  (* register -> owning region; enforces "a register belongs to exactly
     one region" (our algorithms' convention, Section 3) *)
  owner : (string, string) Hashtbl.t;
  (* weak-ordering model state.  Per-op lag/reorder decisions come from
     [ord_rng], a dedicated stream keyed on (seed, mid) so they replay
     identically under -j N and never perturb the engine's rng (which
     Random_latency draws from). *)
  mutable ordering : Ordering.mode;
  ord_rng : Random.State.t;
  qps : (int, qp_state) Hashtbl.t;
  (* latest apply instant assigned to any write on this memory — the
     control plane (permission changes) drains up to here *)
  mutable data_horizon : float;
}

let create ?(one_way = 1.0) ?(legal_change = Permission.static_permissions)
    ?(ordering = Ordering.Strict) ?(seed = 0) ~engine ~stats ~mid () =
  {
    mid;
    engine;
    stats;
    obs = Engine.obs engine;
    actor = Printf.sprintf "mu%d" mid;
    legal_change;
    one_way;
    crashed = false;
    epoch = 0;
    regions = Hashtbl.create 64;
    store = Hashtbl.create 256;
    owner = Hashtbl.create 256;
    ordering;
    ord_rng = Random.State.make [| 0x6f7264; seed; mid |];
    qps = Hashtbl.create 8;
    data_horizon = 0.0;
  }

let ordering t = t.ordering

let set_ordering t mode = t.ordering <- mode

let id t = t.mid

let obs t = t.obs

let stats t = t.stats

(* Typed telemetry event on this memory's track, recorded as the
   operation *arrives* at the memory (one one-way delay after issue) —
   the moment the permission check happens. *)
let emit t ev = Obs.event t.obs ~actor:t.actor ev

let crash t = t.crashed <- true

let is_crashed t = t.crashed

let epoch t = t.epoch

let add_region t ~name ~perm ~registers =
  if Hashtbl.mem t.regions name then
    invalid_arg (Printf.sprintf "Memory.add_region: duplicate region %s" name);
  let region =
    {
      region_name = name;
      registers = Hashtbl.create (max 1 (List.length registers));
      perm;
      genesis = perm;
      granted_epoch = t.epoch;
    }
  in
  List.iter
    (fun r ->
      if Hashtbl.mem t.owner r then
        invalid_arg
          (Printf.sprintf "Memory.add_region: register %s already in region %s" r
             (Hashtbl.find t.owner r));
      Hashtbl.add t.owner r name;
      Hashtbl.add region.registers r ();
      Hashtbl.add t.store r (t.epoch, None))
    registers;
  Hashtbl.add t.regions name region

(* Direct (zero-delay) inspection — for tests and trace printing only;
   simulated processes must go through the timed operations below. *)
let peek_register t reg =
  match Hashtbl.find_opt t.store reg with
  | Some (_, v) -> v
  | None -> None

(* A register is fresh when its last write happened in the current
   epoch; stale registers are lost state awaiting repair. *)
let register_fresh t reg =
  match Hashtbl.find_opt t.store reg with
  | Some (stamp, _) -> stamp = t.epoch
  | None -> false

let stale_registers t ~region =
  match Hashtbl.find_opt t.regions region with
  | None -> []
  | Some r ->
      Hashtbl.fold
        (fun reg () acc -> if register_fresh t reg then acc else reg :: acc)
        r.registers []
      |> List.sort compare

let region_perm t name =
  match Hashtbl.find_opt t.regions name with
  | Some r -> Some r.perm
  | None -> None

(* Whether the region's permission was granted in the current epoch —
   i.e. the region serves operations rather than nak-ing as rejoining. *)
let region_serving t name =
  match Hashtbl.find_opt t.regions name with
  | Some r -> r.granted_epoch = t.epoch
  | None -> false

let region_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.regions [] |> List.sort compare

(* Kernel-side permission override, bypassing legalChange.  Section 7
   places permission management in the (trusted) OS kernel: the Verbs
   facade is that kernel, so it may install any permission; untrusted
   process programs can still only go through changePermission.  A
   kernel grant is always at the current epoch. *)
let force_permission t ~region ~perm =
  match Hashtbl.find_opt t.regions region with
  | Some r ->
      r.perm <- perm;
      r.granted_epoch <- t.epoch
  | None -> invalid_arg "Memory.force_permission: no such region"

(* Restart a crashed memory under a fresh epoch: register contents and
   legalChange-granted permission state are lost.  [`Genesis] rejoin
   has the kernel restore each region's creation-time permission (the
   NIC driver re-registering configured regions on reboot); under
   [`Quarantine] every region stays fenced until someone re-establishes
   its permission via changePermission or the kernel.  Either way all
   registers come back stale: reads nak until a current-epoch write
   repairs them. *)
let restart ?(rejoin = `Genesis) t =
  if not t.crashed then invalid_arg "Memory.restart: memory is not crashed";
  t.crashed <- false;
  t.epoch <- t.epoch + 1;
  (* Materialize the register list (sorted: simlint D2) before blanking:
     Hashtbl.replace during Hashtbl.iter on the same table is
     unspecified behaviour. *)
  Hashtbl.fold (fun reg (stamp, _) acc -> (reg, stamp) :: acc) t.store []
  |> List.sort compare
  |> List.iter (fun (reg, stamp) -> Hashtbl.replace t.store reg (stamp, None));
  (match rejoin with
  | `Genesis ->
      (* In-place field updates commute across regions, so the
         hash-bucket visit order is unobservable. *)
      (Hashtbl.iter
         (fun _ r ->
           r.perm <- r.genesis;
           r.granted_epoch <- t.epoch)
         t.regions)
      [@simlint.allow "D2"]
  | `Quarantine -> ());
  (* In-flight pre-crash placements are dead (the epoch guard drops
     them), so the fresh epoch owes them no ordering: QP floors and the
     control-plane drain horizon reset with the reboot. *)
  Hashtbl.reset t.qps;
  t.data_horizon <- 0.0;
  Stats.bump t.stats "mem.restarts";
  emit t (Event.Mem_restart { mid = t.mid; epoch = t.epoch })

let qp_state t ~from =
  match Hashtbl.find_opt t.qps from with
  | Some q -> q
  | None ->
      let q = { floor = 0.0; horizon = 0.0 } in
      Hashtbl.add t.qps from q;
      q

(* Issue [decide] as a timed memory operation.  The op arrives at the
   memory one one-way after issue; the ordering model then assigns its
   decision and apply instants, and the response is delivered one
   one-way after the decision.  [decide] returns the response plus, for
   writes, the state mutation — split so completion-lag can resolve the
   permission check at arrival while deferring the bytes.  Every leg is
   dropped if the memory is crashed — or has been restarted into a later
   epoch — at that moment, so operations in flight across a crash can
   never resurrect after a restart (a lagged pre-crash placement in
   particular never lands in fresh-epoch memory).  The whole round trip
   is one span on the memory's track; an operation swallowed by a crash
   leaves its span unfinished, which the exporters flag.

   Timing per mode and op class ([now] = arrival instant):

     strict          decide+apply at [now], response one-way later.
     completion-lag  writes: decide at [now], apply at
                     max(now + lag, qp.floor) — same-QP FIFO — with the
                     response still one-way after [now], so the
                     completion can outrun the bytes; reads wait for
                     [qp.floor] (IB read-after-write ordering); control
                     verbs drain [data_horizon] before applying, as a
                     memory-registration change completes outstanding
                     DMA first.
     reordered-qp    data ops decide+apply at max(now + d, qp.floor);
                     the response follows one-way after the perturbed
                     apply, so a completion still implies delivery;
                     control verbs stay at [now] (a data op reordered
                     past a revocation naks at its apply instant, and
                     the issuer learns).
     fences          apply at max(now, qp.horizon) under either weak
                     mode (and raise [qp.floor], so later ops cannot
                     overtake the fence); never issued under strict. *)
let operation t ~span_name ~from ~cls decide =
  let result = Ivar.create () in
  let issue_epoch = t.epoch in
  let live () = (not t.crashed) && t.epoch = issue_epoch in
  Prof.bump "mem.ops.issued" 1;
  let sp = Obs.span t.obs ~actor:t.actor ~cat:"mem" span_name in
  let complete r =
    Engine.schedule t.engine t.one_way (fun () ->
        if live () then begin
          (* issued - completed = ops swallowed by a crash/restart *)
          Prof.bump "mem.ops.completed" 1;
          Obs.finish t.obs sp;
          Ivar.fill result r
        end)
  in
  let decide_apply () =
    let r, mutation = decide () in
    (match mutation with Some m -> m () | None -> ());
    r
  in
  (* run [f] at absolute instant [at] (>= now), under the live guard *)
  let at_instant at f =
    Engine.schedule t.engine (at -. Engine.now t.engine) (fun () ->
        if live () then f ())
  in
  Engine.schedule t.engine t.one_way (fun () ->
      if live () then begin
        let now = Engine.now t.engine in
        match t.ordering with
        | Ordering.Strict -> complete (decide_apply ())
        | Ordering.Completion_lag { max_lag } -> (
            let q = qp_state t ~from in
            match cls with
            | `Write ->
                let r, mutation = decide () in
                let lag = Random.State.float t.ord_rng max_lag in
                (match mutation with
                | Some m ->
                    let apply_at = Float.max (now +. lag) q.floor in
                    q.floor <- apply_at;
                    q.horizon <- Float.max q.horizon apply_at;
                    t.data_horizon <- Float.max t.data_horizon apply_at;
                    if apply_at > now then Prof.bump "mem.ops.lagged" 1;
                    at_instant apply_at m
                | None -> ());
                complete r
            | `Read -> at_instant (Float.max now q.floor) (fun () ->
                complete (decide_apply ()))
            | `Control -> at_instant (Float.max now t.data_horizon) (fun () ->
                complete (decide_apply ()))
            | `Fence ->
                Prof.bump "mem.fences" 1;
                at_instant (Float.max now q.horizon) (fun () ->
                    complete (decide_apply ())))
        | Ordering.Reorder_qp { window } -> (
            match cls with
            | `Control -> complete (decide_apply ())
            | `Write | `Read ->
                let q = qp_state t ~from in
                let d = Random.State.float t.ord_rng window in
                let apply_at = Float.max (now +. d) q.floor in
                if apply_at < q.horizon then Prof.bump "mem.ops.reordered" 1;
                q.horizon <- Float.max q.horizon apply_at;
                if cls = `Write then
                  t.data_horizon <- Float.max t.data_horizon apply_at;
                at_instant apply_at (fun () -> complete (decide_apply ()))
            | `Fence ->
                let q = qp_state t ~from in
                Prof.bump "mem.fences" 1;
                let at = Float.max now q.horizon in
                q.floor <- Float.max q.floor at;
                at_instant at (fun () -> complete (decide_apply ())))
      end);
  result

let lookup_region t name =
  match Hashtbl.find_opt t.regions name with
  | Some region -> Some region
  | None -> None

(* A region accepts operations only under a current-epoch grant. *)
let serving r ~epoch = r.granted_epoch = epoch

let write_async t ~from ~region ~reg value =
  Stats.incr_writes t.stats;
  operation t ~span_name:"mem.write" ~from ~cls:`Write (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r ->
            serving r ~epoch:t.epoch
            && Hashtbl.mem r.registers reg
            && Permission.can_write r.perm from
      in
      emit t (Event.Mem_write { pid = from; mid = t.mid; region; reg; value; ok });
      if ok then
        (Ack, Some (fun () -> Hashtbl.replace t.store reg (t.epoch, Some value)))
      else (Nak, None))

let read_async t ~from ~region ~reg =
  Stats.incr_reads t.stats;
  operation t ~span_name:"mem.read" ~from ~cls:`Read (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r ->
            serving r ~epoch:t.epoch
            && Hashtbl.mem r.registers reg
            && Permission.can_read r.perm from
            && register_fresh t reg
      in
      emit t (Event.Mem_read { pid = from; mid = t.mid; region; reg; ok });
      ((if ok then Read (peek_register t reg) else Read_nak), None))

(* Batched read of several registers of one region in a single operation —
   an RDMA read of a contiguous slot array (Section 7).  Results are in
   request order; the whole batch naks if any register is outside the
   region, the caller lacks read permission, or any register is stale
   (lost in a restart and not yet repaired). *)
type read_many_result = Read_many of string option array | Read_many_nak

let read_many_async t ~from ~region ~regs =
  Stats.incr_reads t.stats;
  operation t ~span_name:"mem.read_many" ~from ~cls:`Read (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r ->
            serving r ~epoch:t.epoch
            && Permission.can_read r.perm from
            && List.for_all
                 (fun reg ->
                   Hashtbl.mem r.registers reg && register_fresh t reg)
                 regs
      in
      emit t
        (Event.Mem_read_many
           { pid = from; mid = t.mid; region; count = List.length regs; ok });
      ( (if ok then
           Read_many
             (Array.of_list (List.map (fun reg -> peek_register t reg) regs))
         else Read_many_nak),
        None ))

(* Batched write of several registers of one region in a single operation
   — the write-side sibling of [read_many_async], an RDMA write of a
   contiguous array.  [None] stores ⊥ (a write of zeroes).  Every named
   register is stamped with the current epoch, which is what makes this
   the state-transfer primitive: installing a snapshot repairs the whole
   region in one two-delay operation. *)
let write_many_async t ~from ~region ~values =
  Stats.incr_writes t.stats;
  operation t ~span_name:"mem.write_many" ~from ~cls:`Write (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r ->
            serving r ~epoch:t.epoch
            && Permission.can_write r.perm from
            && List.for_all (fun (reg, _) -> Hashtbl.mem r.registers reg) values
      in
      emit t
        (Event.Mem_write_many
           { pid = from; mid = t.mid; region; count = List.length values; ok });
      if ok then
        ( Ack,
          Some
            (fun () ->
              List.iter
                (fun (reg, v) -> Hashtbl.replace t.store reg (t.epoch, v))
                values) )
      else (Nak, None))

(* changePermission (Section 3): the memory evaluates legalChange on
   arrival; an illegal request silently becomes a no-op (the paper's
   semantics), but we report whether it was applied for observability.
   After a restart the pre-crash grant is forgotten, so legalChange is
   shown [Permission.none] as the current state — the rejoin protocol:
   whatever the policy allows from nothing is what a recovering memory
   may grant, and nothing else. *)
let change_permission_async t ~from ~region ~perm =
  Stats.incr_perm_changes t.stats;
  operation t ~span_name:"mem.perm" ~from ~cls:`Control (fun () ->
      let applied =
        match lookup_region t region with
        | None -> false
        | Some r ->
            let current =
              if serving r ~epoch:t.epoch then r.perm else Permission.none
            in
            if t.legal_change ~pid:from ~region ~current ~requested:perm
            then begin
              r.perm <- perm;
              r.granted_epoch <- t.epoch;
              true
            end
            else false
      in
      emit t (Event.Mem_perm { pid = from; mid = t.mid; region; applied });
      ((if applied then Ack else Nak), None))

(* Explicit flush (the RDMA FLUSH / read-after-write fence): the result
   arrives only once every operation this process issued to this memory
   before the fence has been applied.  Free under [Strict] — no engine
   event, no span, no counter — so algorithms may fence unconditionally
   without perturbing strict-mode benchmarks or perf baselines. *)
let fence_async t ~from =
  match t.ordering with
  | Ordering.Strict -> Ivar.full Ack
  | Ordering.Completion_lag _ | Ordering.Reorder_qp _ ->
      operation t ~span_name:"mem.fence" ~from ~cls:`Fence (fun () ->
          emit t (Event.Mem_fence { pid = from; mid = t.mid });
          (Ack, None))
