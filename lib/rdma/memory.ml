(* A simulated (shared) memory node — one of the µ_i of Section 3.

   A memory holds registers grouped into named regions; each region has a
   permission checked *at the memory* when an operation arrives, so a
   Byzantine caller cannot bypass it — the trust placement of an RDMA NIC.

   Timing follows the paper's delay metric: an operation issued at time t
   arrives at the memory at t + one_way (permission check + state change
   happen atomically there) and its response reaches the caller at
   t + 2 * one_way.  A crashed memory never responds: the result ivar is
   simply never filled. *)

open Rdma_sim
open Rdma_obs

type op_result = Ack | Nak

type read_result = Read of string option | Read_nak

type region = {
  region_name : string;
  registers : (string, unit) Hashtbl.t;
  mutable perm : Permission.t;
}

type t = {
  mid : int;
  engine : Engine.t;
  stats : Stats.t;
  obs : Obs.t;
  actor : string; (* "mu<mid>": this memory's telemetry track *)
  legal_change : Permission.legal_change;
  one_way : float;
  mutable crashed : bool;
  regions : (string, region) Hashtbl.t;
  store : (string, string option) Hashtbl.t;
  (* register -> owning region; enforces "a register belongs to exactly
     one region" (our algorithms' convention, Section 3) *)
  owner : (string, string) Hashtbl.t;
}

let create ?(one_way = 1.0) ?(legal_change = Permission.static_permissions)
    ~engine ~stats ~mid () =
  {
    mid;
    engine;
    stats;
    obs = Engine.obs engine;
    actor = Printf.sprintf "mu%d" mid;
    legal_change;
    one_way;
    crashed = false;
    regions = Hashtbl.create 64;
    store = Hashtbl.create 256;
    owner = Hashtbl.create 256;
  }

let id t = t.mid

let obs t = t.obs

(* Typed telemetry event on this memory's track, recorded as the
   operation *arrives* at the memory (one one-way delay after issue) —
   the moment the permission check happens. *)
let emit t ev = Obs.event t.obs ~actor:t.actor ev

let crash t = t.crashed <- true

let is_crashed t = t.crashed

let add_region t ~name ~perm ~registers =
  if Hashtbl.mem t.regions name then
    invalid_arg (Printf.sprintf "Memory.add_region: duplicate region %s" name);
  let region =
    { region_name = name; registers = Hashtbl.create (max 1 (List.length registers)); perm }
  in
  List.iter
    (fun r ->
      if Hashtbl.mem t.owner r then
        invalid_arg
          (Printf.sprintf "Memory.add_region: register %s already in region %s" r
             (Hashtbl.find t.owner r));
      Hashtbl.add t.owner r name;
      Hashtbl.add region.registers r ();
      Hashtbl.add t.store r None)
    registers;
  Hashtbl.add t.regions name region

(* Direct (zero-delay) inspection — for tests and trace printing only;
   simulated processes must go through the timed operations below. *)
let peek_register t reg = Option.join (Hashtbl.find_opt t.store reg)

let region_perm t name =
  match Hashtbl.find_opt t.regions name with
  | Some r -> Some r.perm
  | None -> None

let region_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.regions [] |> List.sort compare

(* Kernel-side permission override, bypassing legalChange.  Section 7
   places permission management in the (trusted) OS kernel: the Verbs
   facade is that kernel, so it may install any permission; untrusted
   process programs can still only go through changePermission. *)
let force_permission t ~region ~perm =
  match Hashtbl.find_opt t.regions region with
  | Some r -> r.perm <- perm
  | None -> invalid_arg "Memory.force_permission: no such region"

(* Issue [apply] as a timed memory operation.  [apply] runs at the memory
   (one-way later); its result is delivered another one-way later.  Either
   leg is dropped if the memory is crashed at that moment.  The whole
   round trip is one span on the memory's track; an operation swallowed
   by a crash leaves its span unfinished, which the exporters flag. *)
let operation t ~span_name apply =
  let result = Ivar.create () in
  let sp = Obs.span t.obs ~actor:t.actor ~cat:"mem" span_name in
  Engine.schedule t.engine t.one_way (fun () ->
      if not t.crashed then begin
        let r = apply () in
        Engine.schedule t.engine t.one_way (fun () ->
            if not t.crashed then begin
              Obs.finish t.obs sp;
              Ivar.fill result r
            end)
      end);
  result

let lookup_region t name =
  match Hashtbl.find_opt t.regions name with
  | Some region -> Some region
  | None -> None

let write_async t ~from ~region ~reg value =
  Stats.incr_writes t.stats;
  operation t ~span_name:"mem.write" (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r ->
            Hashtbl.mem r.registers reg && Permission.can_write r.perm from
      in
      if ok then Hashtbl.replace t.store reg (Some value);
      emit t (Event.Mem_write { pid = from; mid = t.mid; region; reg; value; ok });
      if ok then Ack else Nak)

let read_async t ~from ~region ~reg =
  Stats.incr_reads t.stats;
  operation t ~span_name:"mem.read" (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r -> Hashtbl.mem r.registers reg && Permission.can_read r.perm from
      in
      emit t (Event.Mem_read { pid = from; mid = t.mid; region; reg; ok });
      if ok then Read (Option.join (Hashtbl.find_opt t.store reg)) else Read_nak)

(* Batched read of several registers of one region in a single operation —
   an RDMA read of a contiguous slot array (Section 7).  Results are in
   request order; the whole batch naks if any register is outside the
   region or the caller lacks read permission. *)
type read_many_result = Read_many of string option array | Read_many_nak

let read_many_async t ~from ~region ~regs =
  Stats.incr_reads t.stats;
  operation t ~span_name:"mem.read_many" (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r ->
            Permission.can_read r.perm from
            && List.for_all (fun reg -> Hashtbl.mem r.registers reg) regs
      in
      emit t
        (Event.Mem_read_many
           { pid = from; mid = t.mid; region; count = List.length regs; ok });
      if ok then
        Read_many
          (Array.of_list
             (List.map (fun reg -> Option.join (Hashtbl.find_opt t.store reg)) regs))
      else Read_many_nak)

(* changePermission (Section 3): the memory evaluates legalChange on
   arrival; an illegal request silently becomes a no-op (the paper's
   semantics), but we report whether it was applied for observability. *)
let change_permission_async t ~from ~region ~perm =
  Stats.incr_perm_changes t.stats;
  operation t ~span_name:"mem.perm" (fun () ->
      let applied =
        match lookup_region t region with
        | None -> false
        | Some r ->
            if t.legal_change ~pid:from ~region ~current:r.perm ~requested:perm
            then begin
              r.perm <- perm;
              true
            end
            else false
      in
      emit t (Event.Mem_perm { pid = from; mid = t.mid; region; applied });
      if applied then Ack else Nak)
