(* A simulated (shared) memory node — one of the µ_i of Section 3.

   A memory holds registers grouped into named regions; each region has a
   permission checked *at the memory* when an operation arrives, so a
   Byzantine caller cannot bypass it — the trust placement of an RDMA NIC.

   Timing follows the paper's delay metric: an operation issued at time t
   arrives at the memory at t + one_way (permission check + state change
   happen atomically there) and its response reaches the caller at
   t + 2 * one_way.  A crashed memory never responds: the result ivar is
   simply never filled.

   Crash–recovery extends the paper's crash-stop memories: [restart]
   brings a crashed memory back *empty*, under a fresh epoch.  Nothing
   stored before the crash survives — register contents and the
   permission state granted through legalChange are both lost.  Epoch
   stamps enforce the two safety obligations of rejoin:

   - Region permissions carry the epoch at which they were granted.  A
     grant from a previous epoch is dead: every operation naks until the
     region's permission is re-established *at the current epoch* —
     either through [change_permission_async] (which shows legalChange a
     [Permission.none] current state, because the pre-crash grant is
     forgotten) or through the trusted-kernel [force_permission] path.
     A recovering memory can therefore never honour a stale grant.

   - Registers carry the epoch at which they were last written.  A
     register whose stamp predates the current epoch is *unrepaired*:
     reads (single or batched) nak on it, while fresh-epoch writes both
     store the value and repair the register.  An amnesiac replica thus
     answers "I don't know" instead of a silently-empty ⊥, so quorum
     readers can never mistake lost state for genuinely-unwritten state;
     repair is exactly "write the register back" (read-repair, snapshot
     installation), after which reads serve again. *)

open Rdma_sim
open Rdma_obs

type op_result = Ack | Nak

type read_result = Read of string option | Read_nak

type region = {
  region_name : string;
  registers : (string, unit) Hashtbl.t;
  mutable perm : Permission.t;
  (* the permission the region was created with; the kernel restores it
     on a [`Genesis] rejoin, as a NIC driver re-registers configured
     memory regions on reboot *)
  genesis : Permission.t;
  mutable granted_epoch : int;
}

type t = {
  mid : int;
  engine : Engine.t;
  stats : Stats.t;
  obs : Obs.t;
  actor : string; (* "mu<mid>": this memory's telemetry track *)
  legal_change : Permission.legal_change;
  one_way : float;
  mutable crashed : bool;
  mutable epoch : int;
  regions : (string, region) Hashtbl.t;
  (* register -> (epoch of last write, value) *)
  store : (string, int * string option) Hashtbl.t;
  (* register -> owning region; enforces "a register belongs to exactly
     one region" (our algorithms' convention, Section 3) *)
  owner : (string, string) Hashtbl.t;
}

let create ?(one_way = 1.0) ?(legal_change = Permission.static_permissions)
    ~engine ~stats ~mid () =
  {
    mid;
    engine;
    stats;
    obs = Engine.obs engine;
    actor = Printf.sprintf "mu%d" mid;
    legal_change;
    one_way;
    crashed = false;
    epoch = 0;
    regions = Hashtbl.create 64;
    store = Hashtbl.create 256;
    owner = Hashtbl.create 256;
  }

let id t = t.mid

let obs t = t.obs

let stats t = t.stats

(* Typed telemetry event on this memory's track, recorded as the
   operation *arrives* at the memory (one one-way delay after issue) —
   the moment the permission check happens. *)
let emit t ev = Obs.event t.obs ~actor:t.actor ev

let crash t = t.crashed <- true

let is_crashed t = t.crashed

let epoch t = t.epoch

let add_region t ~name ~perm ~registers =
  if Hashtbl.mem t.regions name then
    invalid_arg (Printf.sprintf "Memory.add_region: duplicate region %s" name);
  let region =
    {
      region_name = name;
      registers = Hashtbl.create (max 1 (List.length registers));
      perm;
      genesis = perm;
      granted_epoch = t.epoch;
    }
  in
  List.iter
    (fun r ->
      if Hashtbl.mem t.owner r then
        invalid_arg
          (Printf.sprintf "Memory.add_region: register %s already in region %s" r
             (Hashtbl.find t.owner r));
      Hashtbl.add t.owner r name;
      Hashtbl.add region.registers r ();
      Hashtbl.add t.store r (t.epoch, None))
    registers;
  Hashtbl.add t.regions name region

(* Direct (zero-delay) inspection — for tests and trace printing only;
   simulated processes must go through the timed operations below. *)
let peek_register t reg =
  match Hashtbl.find_opt t.store reg with
  | Some (_, v) -> v
  | None -> None

(* A register is fresh when its last write happened in the current
   epoch; stale registers are lost state awaiting repair. *)
let register_fresh t reg =
  match Hashtbl.find_opt t.store reg with
  | Some (stamp, _) -> stamp = t.epoch
  | None -> false

let stale_registers t ~region =
  match Hashtbl.find_opt t.regions region with
  | None -> []
  | Some r ->
      Hashtbl.fold
        (fun reg () acc -> if register_fresh t reg then acc else reg :: acc)
        r.registers []
      |> List.sort compare

let region_perm t name =
  match Hashtbl.find_opt t.regions name with
  | Some r -> Some r.perm
  | None -> None

(* Whether the region's permission was granted in the current epoch —
   i.e. the region serves operations rather than nak-ing as rejoining. *)
let region_serving t name =
  match Hashtbl.find_opt t.regions name with
  | Some r -> r.granted_epoch = t.epoch
  | None -> false

let region_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.regions [] |> List.sort compare

(* Kernel-side permission override, bypassing legalChange.  Section 7
   places permission management in the (trusted) OS kernel: the Verbs
   facade is that kernel, so it may install any permission; untrusted
   process programs can still only go through changePermission.  A
   kernel grant is always at the current epoch. *)
let force_permission t ~region ~perm =
  match Hashtbl.find_opt t.regions region with
  | Some r ->
      r.perm <- perm;
      r.granted_epoch <- t.epoch
  | None -> invalid_arg "Memory.force_permission: no such region"

(* Restart a crashed memory under a fresh epoch: register contents and
   legalChange-granted permission state are lost.  [`Genesis] rejoin
   has the kernel restore each region's creation-time permission (the
   NIC driver re-registering configured regions on reboot); under
   [`Quarantine] every region stays fenced until someone re-establishes
   its permission via changePermission or the kernel.  Either way all
   registers come back stale: reads nak until a current-epoch write
   repairs them. *)
let restart ?(rejoin = `Genesis) t =
  if not t.crashed then invalid_arg "Memory.restart: memory is not crashed";
  t.crashed <- false;
  t.epoch <- t.epoch + 1;
  (* Materialize the register list (sorted: simlint D2) before blanking:
     Hashtbl.replace during Hashtbl.iter on the same table is
     unspecified behaviour. *)
  Hashtbl.fold (fun reg (stamp, _) acc -> (reg, stamp) :: acc) t.store []
  |> List.sort compare
  |> List.iter (fun (reg, stamp) -> Hashtbl.replace t.store reg (stamp, None));
  (match rejoin with
  | `Genesis ->
      (* In-place field updates commute across regions, so the
         hash-bucket visit order is unobservable. *)
      (Hashtbl.iter
         (fun _ r ->
           r.perm <- r.genesis;
           r.granted_epoch <- t.epoch)
         t.regions)
      [@simlint.allow "D2"]
  | `Quarantine -> ());
  Stats.bump t.stats "mem.restarts";
  emit t (Event.Mem_restart { mid = t.mid; epoch = t.epoch })

(* Issue [apply] as a timed memory operation.  [apply] runs at the memory
   (one-way later); its result is delivered another one-way later.  Either
   leg is dropped if the memory is crashed — or has been restarted into a
   later epoch — at that moment, so operations in flight across a crash
   can never resurrect after a restart.  The whole round trip is one span
   on the memory's track; an operation swallowed by a crash leaves its
   span unfinished, which the exporters flag. *)
let operation t ~span_name apply =
  let result = Ivar.create () in
  let issue_epoch = t.epoch in
  let live () = (not t.crashed) && t.epoch = issue_epoch in
  Prof.bump "mem.ops.issued" 1;
  let sp = Obs.span t.obs ~actor:t.actor ~cat:"mem" span_name in
  Engine.schedule t.engine t.one_way (fun () ->
      if live () then begin
        let r = apply () in
        Engine.schedule t.engine t.one_way (fun () ->
            if live () then begin
              (* issued - completed = ops swallowed by a crash/restart *)
              Prof.bump "mem.ops.completed" 1;
              Obs.finish t.obs sp;
              Ivar.fill result r
            end)
      end);
  result

let lookup_region t name =
  match Hashtbl.find_opt t.regions name with
  | Some region -> Some region
  | None -> None

(* A region accepts operations only under a current-epoch grant. *)
let serving r ~epoch = r.granted_epoch = epoch

let write_async t ~from ~region ~reg value =
  Stats.incr_writes t.stats;
  operation t ~span_name:"mem.write" (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r ->
            serving r ~epoch:t.epoch
            && Hashtbl.mem r.registers reg
            && Permission.can_write r.perm from
      in
      if ok then Hashtbl.replace t.store reg (t.epoch, Some value);
      emit t (Event.Mem_write { pid = from; mid = t.mid; region; reg; value; ok });
      if ok then Ack else Nak)

let read_async t ~from ~region ~reg =
  Stats.incr_reads t.stats;
  operation t ~span_name:"mem.read" (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r ->
            serving r ~epoch:t.epoch
            && Hashtbl.mem r.registers reg
            && Permission.can_read r.perm from
            && register_fresh t reg
      in
      emit t (Event.Mem_read { pid = from; mid = t.mid; region; reg; ok });
      if ok then Read (peek_register t reg) else Read_nak)

(* Batched read of several registers of one region in a single operation —
   an RDMA read of a contiguous slot array (Section 7).  Results are in
   request order; the whole batch naks if any register is outside the
   region, the caller lacks read permission, or any register is stale
   (lost in a restart and not yet repaired). *)
type read_many_result = Read_many of string option array | Read_many_nak

let read_many_async t ~from ~region ~regs =
  Stats.incr_reads t.stats;
  operation t ~span_name:"mem.read_many" (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r ->
            serving r ~epoch:t.epoch
            && Permission.can_read r.perm from
            && List.for_all
                 (fun reg ->
                   Hashtbl.mem r.registers reg && register_fresh t reg)
                 regs
      in
      emit t
        (Event.Mem_read_many
           { pid = from; mid = t.mid; region; count = List.length regs; ok });
      if ok then
        Read_many (Array.of_list (List.map (fun reg -> peek_register t reg) regs))
      else Read_many_nak)

(* Batched write of several registers of one region in a single operation
   — the write-side sibling of [read_many_async], an RDMA write of a
   contiguous array.  [None] stores ⊥ (a write of zeroes).  Every named
   register is stamped with the current epoch, which is what makes this
   the state-transfer primitive: installing a snapshot repairs the whole
   region in one two-delay operation. *)
let write_many_async t ~from ~region ~values =
  Stats.incr_writes t.stats;
  operation t ~span_name:"mem.write_many" (fun () ->
      let ok =
        match lookup_region t region with
        | None -> false
        | Some r ->
            serving r ~epoch:t.epoch
            && Permission.can_write r.perm from
            && List.for_all (fun (reg, _) -> Hashtbl.mem r.registers reg) values
      in
      if ok then
        List.iter
          (fun (reg, v) -> Hashtbl.replace t.store reg (t.epoch, v))
          values;
      emit t
        (Event.Mem_write_many
           { pid = from; mid = t.mid; region; count = List.length values; ok });
      if ok then Ack else Nak)

(* changePermission (Section 3): the memory evaluates legalChange on
   arrival; an illegal request silently becomes a no-op (the paper's
   semantics), but we report whether it was applied for observability.
   After a restart the pre-crash grant is forgotten, so legalChange is
   shown [Permission.none] as the current state — the rejoin protocol:
   whatever the policy allows from nothing is what a recovering memory
   may grant, and nothing else. *)
let change_permission_async t ~from ~region ~perm =
  Stats.incr_perm_changes t.stats;
  operation t ~span_name:"mem.perm" (fun () ->
      let applied =
        match lookup_region t region with
        | None -> false
        | Some r ->
            let current =
              if serving r ~epoch:t.epoch then r.perm else Permission.none
            in
            if t.legal_change ~pid:from ~region ~current ~requested:perm
            then begin
              r.perm <- perm;
              r.granted_epoch <- t.epoch;
              true
            end
            else false
      in
      emit t (Event.Mem_perm { pid = from; mid = t.mid; region; applied });
      if applied then Ack else Nak)
