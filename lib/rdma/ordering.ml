(* Pluggable RDMA memory-ordering models — see ordering.mli for the
   semantics.  This module is only the mode algebra (constructors,
   equality, string codecs); the timing itself lives in [Memory]. *)

type mode =
  | Strict
  | Completion_lag of { max_lag : float }
  | Reorder_qp of { window : float }
[@@simlint.protocol]
(* simlint D3: a new ordering mode must be handled explicitly by the
   memory scheduler, the fault codec, and the CLI parser — no silent
   wildcard fall-through that would quietly run a weak mode strictly. *)

let default_lag = 6.0

let default_window = 4.0

let completion_lag = Completion_lag { max_lag = default_lag }

let reorder_qp = Reorder_qp { window = default_window }

let equal a b =
  match (a, b) with
  | Strict, Strict -> true
  | Completion_lag { max_lag = a }, Completion_lag { max_lag = b } -> a = b
  | Reorder_qp { window = a }, Reorder_qp { window = b } -> a = b
  | (Strict | Completion_lag _ | Reorder_qp _), _ -> false

let name = function
  | Strict -> "strict"
  | Completion_lag _ -> "completion-lag"
  | Reorder_qp _ -> "reordered-qp"

let to_string = function
  | Strict -> "strict"
  | Completion_lag { max_lag } -> Printf.sprintf "completion-lag:%g" max_lag
  | Reorder_qp { window } -> Printf.sprintf "reordered-qp:%g" window

let usage =
  "expected strict | completion-lag[:MAX_LAG] | reordered-qp[:WINDOW]"

let of_string s =
  let base, param =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let float_param ~default =
    match param with
    | None -> Ok default
    | Some p -> (
        match float_of_string_opt p with
        | Some f when f >= 0.0 -> Ok f
        | Some _ | None ->
            Error (Printf.sprintf "bad ordering parameter %S (%s)" p usage))
  in
  match String.lowercase_ascii base with
  | "strict" -> (
      match param with
      | None -> Ok Strict
      | Some _ -> Error ("strict takes no parameter (" ^ usage ^ ")"))
  | "completion-lag" ->
      Result.map
        (fun max_lag -> Completion_lag { max_lag })
        (float_param ~default:default_lag)
  | "reordered-qp" | "reordered-within-qp" ->
      Result.map
        (fun window -> Reorder_qp { window })
        (float_param ~default:default_window)
  | _ -> Error (Printf.sprintf "unknown ordering mode %S (%s)" s usage)

let pp ppf m = Format.pp_print_string ppf (to_string m)
