(** A replicated key-value store: the state machine applied to committed
    log entries. *)

type command = Set of string * string | Delete of string | Noop

val encode_command : command -> string

val decode_command : string -> command option

type t

val create : unit -> t

val apply : t -> command -> unit

val apply_encoded : t -> string -> unit

val get : t -> string -> string option

val size : t -> int

(** Materialize the store from a replica's applied log. *)
val of_log : (int * string) list -> t

val bindings : t -> (string * string) list

(** Materialize from a packed replica of any engine. *)
val of_replica : Consensus_engine.running -> t

(** Live-following store: seeded from the replica's applied log, then
    kept current from its commit stream ({!Consensus_engine.on_commit}). *)
val attach : Consensus_engine.running -> t
