(** A distributed lock service over the protected-memory log: FIFO
    grants with monotonically increasing fencing tokens. *)

type command =
  | Acquire of { lock : string; owner : string }
  | Release of { lock : string; owner : string }

val encode_command : command -> string

val decode_command : string -> command option

type t

val create : unit -> t

val apply : t -> command -> unit

val apply_encoded : t -> string -> unit

(** Current holder and its fencing token. *)
val holder : t -> string -> (string * int) option

(** Owners queued behind the current holder, FIFO. *)
val waiting : t -> string -> string list

(** All grants ever made, oldest first, as (lock, owner, token); tokens
    increase strictly. *)
val grant_history : t -> (string * string * int) list

(** Materialize from a replica's applied log. *)
val of_log : (int * string) list -> t

(** Materialize from a packed replica of any engine. *)
val of_replica : Consensus_engine.running -> t

(** Live-following service: seeded from the applied log, then kept
    current from the commit stream ({!Consensus_engine.on_commit}). *)
val attach : Consensus_engine.running -> t
