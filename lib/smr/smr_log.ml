(* A replicated log on protected memory — state machine replication in
   the style the paper's technique spawned (cf. Mu, µs-scale SMR).

   The log lives in one region per memory, exclusively writable by the
   current leader (the Protected Memory Paxos permission discipline,
   Algorithm 7).  In steady state the leader appends an entry with ONE
   replicated write — two delays — because write success certifies the
   absence of rivals; no acknowledgement round is needed.

   Leader change: the new leader takes the exclusive write permission on
   every memory, reads a majority of log replicas, adopts for every slot
   the value with the highest term (any committed slot is preserved: the
   read majority intersects the commit majority, and by induction every
   replica holding a term ≥ the committing term holds the committed
   command), rewrites the adopted prefix under its own term, and resumes
   serving.

   Commands reach the leader as network messages from clients (who are
   extra processes on the same simulated network); committed entries are
   announced to the other replicas, which apply them in order. *)

open Rdma_sim
open Rdma_mem
open Rdma_net
open Rdma_mm
open Rdma_obs
open Rdma_consensus

let region = "smr"

let entry_reg i = Printf.sprintf "e.%d" i

(* The checkpoint register: a quorum-acked snapshot of the committed
   prefix — [up_to] plus the stored entry strings 1..up_to.  Entries
   below the checkpoint may be truncated from the log; any reader holding
   the checkpoint needs none of them.  The register is only ever written
   AFTER the entries it covers were committed (quorum-acked), so a value
   read from ANY single replica covers only committed entries and
   adopting the maximum seen is safe. *)
let ckpt_reg = "ckpt"

let encode_ckpt ~up_to ~entries = Codec.join (Codec.int_field up_to :: entries)

let decode_ckpt s =
  match Codec.split s with
  | up :: entries ->
      Option.map (fun up_to -> (up_to, entries)) (Codec.int_of_field up)
  | [] -> None

let encode_entry ~term ~cmd = Codec.join2 (Codec.int_field term) cmd

let decode_entry s =
  match Codec.split2 s with
  | None -> None
  | Some (tf, cmd) -> Option.map (fun term -> (term, cmd)) (Codec.int_of_field tf)

(* Commands are stored with their (client, seq) origin so that a new
   leader can rebuild the duplicate-suppression table from the log and a
   retried request is acknowledged rather than re-appended. *)
let encode_cmd_meta ~client ~seq ~cmd =
  Codec.join3 (Codec.int_field client) (Codec.int_field seq) cmd

let decode_cmd_meta s =
  match Codec.split3 s with
  | None -> None
  | Some (cf, qf, cmd) -> (
      match (Codec.int_of_field cf, Codec.int_of_field qf) with
      | Some client, Some seq -> Some (client, seq, cmd)
      | _ -> None)

(* Client/replica messages. *)
type msg =
  | Request of { client : int; seq : int; cmd : string }
  | Ack of { client : int; seq : int; index : int }
  | Commit of { index : int; cmd : string }
  | Read_request of { client : int; seq : int }
  | Read_reply of { client : int; seq : int; up_to : int }
  | Catch_up of { pid : int }
  | Snapshot of { up_to : int; entries : string list }

let encode_msg = function
  | Request { client; seq; cmd } ->
      Codec.join [ "req"; Codec.int_field client; Codec.int_field seq; cmd ]
  | Ack { client; seq; index } ->
      Codec.join [ "ack"; Codec.int_field client; Codec.int_field seq;
        Codec.int_field index ]
  | Commit { index; cmd } -> Codec.join [ "com"; Codec.int_field index; cmd ]
  | Read_request { client; seq } ->
      Codec.join [ "rdq"; Codec.int_field client; Codec.int_field seq ]
  | Read_reply { client; seq; up_to } ->
      Codec.join [ "rdr"; Codec.int_field client; Codec.int_field seq;
        Codec.int_field up_to ]
  | Catch_up { pid } -> Codec.join [ "cup"; Codec.int_field pid ]
  | Snapshot { up_to; entries } ->
      Codec.join ("snp" :: Codec.int_field up_to :: entries)

let decode_msg s =
  match Codec.split s with
  | [ "req"; c; q; cmd ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q) with
      | Some client, Some seq -> Some (Request { client; seq; cmd })
      | _ -> None)
  | [ "ack"; c; q; i ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q, Codec.int_of_field i) with
      | Some client, Some seq, Some index -> Some (Ack { client; seq; index })
      | _ -> None)
  | [ "com"; i; cmd ] ->
      Option.map (fun index -> Commit { index; cmd }) (Codec.int_of_field i)
  | [ "rdq"; c; q ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q) with
      | Some client, Some seq -> Some (Read_request { client; seq })
      | _ -> None)
  | [ "rdr"; c; q; u ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q, Codec.int_of_field u) with
      | Some client, Some seq, Some up_to -> Some (Read_reply { client; seq; up_to })
      | _ -> None)
  | [ "cup"; p ] -> Option.map (fun pid -> Catch_up { pid }) (Codec.int_of_field p)
  | "snp" :: u :: entries ->
      Option.map (fun up_to -> Snapshot { up_to; entries }) (Codec.int_of_field u)
  | _ -> None

(* The engine-shared configuration record (re-exported so existing
   [Smr_log.config] users compile unchanged).  The lease knobs are
   velos-specific and ignored here; [anti_entropy_every = 0.] (the
   default) preserves this engine's pre-refactor behaviour exactly. *)
type config = Consensus_engine.config = {
  replicas : int; (* replicas are processes 0 .. replicas-1 *)
  max_entries : int;
  f_m : int option;
  max_terms : int;
  serve_until : float;
      (* virtual time at which replicas stop serving, so a simulation run
         quiesces; clients finish their workload well before *)
  checkpoint_every : int;
      (* write a checkpoint (and truncate the log below it) every this
         many committed entries; 0 disables checkpointing *)
  anti_entropy_every : float;
      (* > 0.: every follower periodically asks the leader for a
         snapshot when its apply stream stalls, so commits missed during
         a partition are healed; 0. = pre-refactor behaviour (only
         restarted replicas catch up) *)
  lease_duration : float; (* velos-only; ignored here *)
  lease_violation : bool; (* velos-only; ignored here *)
}

let name = "pmp"

let descr =
  "Mu-style log on Protected Memory Paxos: permission-switched leader, \
   1 replicated write per append, quorum lease write per read"

let default_config = Consensus_engine.default_config

(* Only replicas may take the log's exclusive write permission. *)
let legal_change cfg : Permission.legal_change =
 fun ~pid ~region:r ~current:_ ~requested ->
  r = region
  && pid < cfg.replicas
  && Permission.sole_writer requested = Some pid

let lease_reg = "lease"

let setup_regions cluster cfg =
  let n = Cluster.n cluster in
  Cluster.add_region_everywhere cluster ~name:region
    ~perm:(Permission.exclusive_writer ~writer:0 ~n)
    ~registers:
      (ckpt_reg :: lease_reg
       :: List.init cfg.max_entries (fun i -> entry_reg (i + 1)))

type replica = {
  pid : int;
  cfg : config;
  applied : (int * string) Queue.t; (* (index, cmd) in application order *)
  mutable applied_up_to : int;
  mutable current_term : int;
  mutable stopped : bool;
  mutable caught_up : bool; (* a restarted replica has received a snapshot *)
  mutable subscribed : bool; (* telemetry subscription installed once *)
  pending : (int * string) Mailbox.t; (* decoded Commit messages *)
  requests : (int * int * string) Mailbox.t; (* client, seq, cmd *)
  reads : (int * int) Mailbox.t; (* client, seq *)
  rejoin : int Mailbox.t; (* restarted memories awaiting state transfer *)
  catchups : int Mailbox.t; (* restarted replicas awaiting a snapshot *)
  mutable commit_subs : (index:int -> cmd:string -> unit) list;
  mutable recover_subs : (term:int -> unit) list;
}

let applied_entries r =
  Queue.fold (fun acc e -> e :: acc) [] r.applied |> List.rev

let applied_count r = r.applied_up_to

let current_term r = r.current_term

let on_commit r f = r.commit_subs <- f :: r.commit_subs

let on_recover r f = r.recover_subs <- f :: r.recover_subs

let apply_entry r ~index ~cmd =
  if index = r.applied_up_to + 1 then begin
    Queue.push (index, cmd) r.applied;
    r.applied_up_to <- index;
    List.iter (fun f -> f ~index ~cmd) r.commit_subs
  end

(* Route incoming messages by role. *)
let pump (ctx : _ Cluster.ctx) r =
  while not r.stopped do
    let from, payload = Network.recv ctx.Cluster.ep in
    match decode_msg payload with
    | Some (Request { client; seq; cmd }) -> Mailbox.send r.requests (client, seq, cmd)
    | Some (Commit { index; cmd }) -> Mailbox.send r.pending (index, cmd)
    | Some (Read_request { client; seq }) -> Mailbox.send r.reads (client, seq)
    | Some (Catch_up { pid }) -> Mailbox.send r.catchups pid
    | Some (Snapshot { up_to = _; entries }) ->
        (* Install the leader's snapshot: apply the committed prefix we
           are missing wholesale — no log replay. *)
        r.caught_up <- true;
        List.iteri
          (fun i stored ->
            let index = i + 1 in
            if index > r.applied_up_to then begin
              let cmd =
                match decode_cmd_meta stored with
                | Some (_, _, cmd) -> cmd
                | None -> stored
              in
              apply_entry r ~index ~cmd
            end)
          entries
    | Some (Ack _) | Some (Read_reply _) | None -> ignore from
  done

(* Followers apply committed entries in order (buffering gaps). *)
let applier r =
  let buffer = Hashtbl.create 32 in
  while not r.stopped do
    let index, cmd = Mailbox.recv r.pending in
    Hashtbl.replace buffer index cmd;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt buffer (r.applied_up_to + 1) with
      | Some cmd ->
          Hashtbl.remove buffer (r.applied_up_to + 1);
          apply_entry r ~index:(r.applied_up_to + 1) ~cmd
      | None -> continue := false
    done
  done

(* State transfer to one (typically restarted) memory: take the write
   permission there, then install the leader's full view of the region —
   checkpoint, log entries, lease — in ONE batched write, which stamps
   every register fresh in the memory's current epoch
   ([Memory.stale_registers] becomes empty).

   Only registers still STALE since the restart are written: a fresh
   register was written after the rejoin — possibly by a newer-term
   leader — and clobbering it with this leader's (possibly outdated)
   view could erase a committed entry.  The staleness mask models
   reading the memory's per-epoch valid bitmap; the batched write stays
   permission-guarded, so if a rival takes the permission between the
   mask read and the write, the write naks and the rival repairs
   instead.  Spawned as a sub-fiber so a memory that re-crashes
   mid-transfer cannot wedge the leader. *)
let spawn_repair (ctx : _ Cluster.ctx) r ~term ~up_to ~entries ~tail mid =
  ctx.Cluster.spawn_sub
    (Printf.sprintf "smr.repair%d" mid)
    (fun () ->
      let client = ctx.Cluster.client in
      let n = ctx.Cluster.cluster_n in
      let (_ : Memory.op_result) =
        Memclient.change_permission client ~mem:mid ~region
          ~perm:(Permission.exclusive_writer ~writer:r.pid ~n)
      in
      let tail_tbl = Hashtbl.create 16 in
      List.iter (fun (i, cmd) -> Hashtbl.replace tail_tbl i cmd) tail;
      let slot i =
        ( entry_reg i,
          if i <= up_to then None
          else
            Option.map
              (fun cmd -> encode_entry ~term ~cmd)
              (Hashtbl.find_opt tail_tbl i) )
      in
      let values =
        (ckpt_reg, if up_to = 0 then None else Some (encode_ckpt ~up_to ~entries))
        :: (lease_reg, Some (Codec.int_field term))
        :: List.init r.cfg.max_entries (fun i -> slot (i + 1))
      in
      let stale = Memory.stale_registers (Memclient.mem client mid) ~region in
      let values = List.filter (fun (reg, _) -> List.mem reg stale) values in
      if values <> [] then
        match Memclient.write_many client ~mem:mid ~region ~values with
        | Memory.Ack ->
            Stats.bump ctx.Cluster.ctx_stats "smr.repairs";
            Obs.event ctx.Cluster.ctx_obs ~actor:(Printf.sprintf "p%d" r.pid)
              (Event.Custom
                 { name = "smr.repair"; detail = Printf.sprintf "mu%d" mid })
        | Memory.Nak -> ())
[@@simlint.allow
  "F1 repair bookkeeping: the Ack branch only counts the repair in \
   telemetry; the transferred state is validated by the next leader \
   recovery's reads, which run under a fresh permission grab that \
   drains this write (EXPERIMENTS.md W2)"]

(* Leader recovery: take permissions, read a majority of replicas, adopt
   the highest checkpoint plus max-term values per later slot, rewrite
   them under our own term.  Returns the adopted log (dense prefix) and
   the adopted checkpoint index, or None if deposed meanwhile.

   A read nak no longer dooms the recovery: a restarted memory answers
   "I don't know" for its stale registers (rather than serving lost state
   as ⊥), so we wait for a quorum of SUCCESSFUL chains and repair the
   nak'd memories with a full state transfer afterwards. *)
let recover (ctx : _ Cluster.ctx) r ~term =
  let cfg = r.cfg in
  let m = ctx.Cluster.cluster_m in
  let f_m = match cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  let n = ctx.Cluster.cluster_n in
  let client = ctx.Cluster.client in
  let regs = ckpt_reg :: List.init cfg.max_entries (fun i -> entry_reg (i + 1)) in
  (* per-memory chain: grab permission, read checkpoint + whole log *)
  let chains = Array.init m (fun _ -> Ivar.create ()) in
  for i = 0 to m - 1 do
    ctx.Cluster.spawn_sub
      (Printf.sprintf "smr.recover%d" i)
      (fun () ->
        let (_ : Memory.op_result) =
          Memclient.change_permission client ~mem:i ~region
            ~perm:(Permission.exclusive_writer ~writer:r.pid ~n)
        in
        match
          Ivar.await
            (Memory.read_many_async (Memclient.mem client i) ~from:r.pid ~region ~regs)
        with
        | Memory.Read_many values -> Ivar.fill chains.(i) (Some values)
        | Memory.Read_many_nak -> Ivar.fill chains.(i) None)
  done;
  (* Gather a quorum of successful chains, tolerating naks: each round
     waits for [quorum + failures-so-far] completions; crashed memories
     never complete, so give up (and retry in a later term) once that
     exceeds m. *)
  let rec gather k =
    if k > m then None
    else begin
      let completed = Par.await_k chains k in
      let failed =
        List.filter_map (fun (i, v) -> if v = None then Some i else None) completed
      in
      let ok =
        List.filter_map (fun (i, v) -> Option.map (fun vs -> (i, vs)) v) completed
      in
      if List.length ok >= quorum then Some (ok, failed)
      else gather (quorum + List.length failed)
    end
  in
  match gather quorum with
  | None -> None
  | Some (ok, failed) ->
      (* Adopt the highest checkpoint seen: it covers only committed
         entries (written quorum-acked before any truncation), and the
         read quorum intersects the checkpoint's write quorum. *)
      let base = ref 0 in
      let base_entries = ref [] in
      List.iter
        (fun (_, values) ->
          match Array.length values with
          | 0 -> ()
          | _ -> (
              match Option.bind values.(0) decode_ckpt with
              | Some (up_to, entries) when up_to > !base ->
                  base := up_to;
                  base_entries := entries
              | _ -> ()))
        ok;
      let base = !base in
      (* Per-slot max-term adoption above the checkpoint (values below it
         may be truncated away and are covered by the checkpoint). *)
      let adopted = Array.make cfg.max_entries None in
      List.iter
        (fun (_, values) ->
          Array.iteri
            (fun j v ->
              if j > 0 then begin
                let idx = j - 1 in
                if idx >= base then
                  match Option.bind v decode_entry with
                  | None -> ()
                  | Some (t, cmd) -> (
                      match adopted.(idx) with
                      | Some (t0, _) when t0 >= t -> ()
                      | _ -> adopted.(idx) <- Some (t, cmd))
              end)
            values)
        ok;
      (* Dense adopted tail above the checkpoint. *)
      let tail = ref [] in
      (try
         for idx = base to cfg.max_entries - 1 do
           match adopted.(idx) with
           | Some (_, cmd) -> tail := (idx + 1, cmd) :: !tail
           | None -> raise Exit
         done
       with Exit -> ());
      let tail = List.rev !tail in
      let deposed = ref false in
      (* Re-replicate the adopted checkpoint, then rewrite the tail under
         our term. *)
      if base > 0 then begin
        let writes =
          Memclient.write_all_async client ~region ~reg:ckpt_reg
            (encode_ckpt ~up_to:base ~entries:!base_entries)
        in
        let completed = Par.await_k writes quorum in
        if not (List.for_all (fun (_, w) -> w = Memory.Ack) completed) then
          deposed := true
      end;
      List.iter
        (fun (index, cmd) ->
          if not !deposed then begin
            let writes =
              Memclient.write_all_async client ~region ~reg:(entry_reg index)
                (encode_entry ~term ~cmd)
            in
            let completed = Par.await_k writes quorum in
            if not (List.for_all (fun (_, w) -> w = Memory.Ack) completed) then
              deposed := true
          end)
        tail;
      if !deposed then None
      else begin
        (* State-transfer repair of the memories whose chains nak'd (they
           restarted and lost the log). *)
        List.iter
          (fun mid -> spawn_repair ctx r ~term ~up_to:base ~entries:!base_entries ~tail mid)
          failed;
        let prefix = List.mapi (fun i e -> (i + 1, e)) !base_entries @ tail in
        Some (prefix, base)
      end

(* Append one entry in steady state: a single replicated write; all-ack
   majority = committed (two delays). *)
let append (ctx : _ Cluster.ctx) r ~term ~index ~cmd =
  let m = ctx.Cluster.cluster_m in
  let f_m = match r.cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  let writes =
    Memclient.write_all_async ctx.Cluster.client ~region ~reg:(entry_reg index)
      (encode_entry ~term ~cmd)
  in
  let completed = Par.await_k writes quorum in
  List.for_all (fun (_, w) -> w = Memory.Ack) completed

let leader_loop (ctx : _ Cluster.ctx) r =
  let ep = ctx.Cluster.ep in
  let terms = ref 0 in
  let continue = ref true in
  while !continue && not r.stopped do
    Omega.wait_until_leader ctx.Cluster.ctx_omega ~me:r.pid;
    if r.stopped || Engine.now ctx.Cluster.ctx_engine >= r.cfg.serve_until then
      continue := false
    else begin
      incr terms;
      if !terms > r.cfg.max_terms then continue := false
      else begin
        let term = (!terms * r.cfg.replicas) + r.pid + 1 in
        r.current_term <- term;
        (* The very first reign of the initial leader: permissions are
           still at their creation values and the log is empty — skip
           recovery (the 2-delay fast path from the very first append).
           A RESTARTED initial leader (now > 0) recovers like anyone
           else. *)
        let recovered =
          if r.pid = 0 && !terms = 1 && Engine.now ctx.Cluster.ctx_engine = 0.0
          then Some ([], 0)
          else recover ctx r ~term
        in
        match recovered with
        | None -> () (* deposed during recovery; wait for Ω again *)
        | Some (prefix, ckpt_base) ->
            r.caught_up <- true;
            List.iter (fun f -> f ~term) r.recover_subs;
            (* Rebuild duplicate suppression from the log, then apply and
               announce the recovered prefix (stripped of metadata).
               [stored] keeps the full committed log (including entries
               covered by the checkpoint) for snapshots and repairs. *)
            let dedup = Hashtbl.create 32 in
            let stored = Hashtbl.create 64 in
            let ckpt_up_to = ref ckpt_base in
            List.iter
              (fun (index, stored_v) ->
                Hashtbl.replace stored index stored_v;
                let cmd =
                  match decode_cmd_meta stored_v with
                  | Some (client, seq, cmd) ->
                      Hashtbl.replace dedup (client, seq) index;
                      cmd
                  | None -> stored_v
                in
                Mailbox.send r.pending (index, cmd);
                Network.broadcast ep (encode_msg (Commit { index; cmd })))
              prefix;
            let next = ref (List.length prefix + 1) in
            let deposed = ref false in
            let m = ctx.Cluster.cluster_m in
            let f_m = match r.cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
            let quorum = m - f_m in
            (* Once [checkpoint_every] entries have committed past the
               last checkpoint: write the snapshot register (quorum-acked
               — only then is the checkpoint allowed to exist), then
               truncate the covered prefix with one batched ⊥-write per
               memory. *)
            let maybe_checkpoint () =
              if r.cfg.checkpoint_every > 0
                 && !next - 1 >= !ckpt_up_to + r.cfg.checkpoint_every
              then begin
                let up_to = !next - 1 in
                let entries = List.init up_to (fun i -> Hashtbl.find stored (i + 1)) in
                let writes =
                  Memclient.write_all_async ctx.Cluster.client ~region
                    ~reg:ckpt_reg (encode_ckpt ~up_to ~entries)
                in
                let completed = Par.await_k writes quorum in
                if List.for_all (fun (_, w) -> w = Memory.Ack) completed then begin
                  let nones = List.init up_to (fun i -> (entry_reg (i + 1), None)) in
                  let truncs =
                    Array.init m (fun i ->
                        Memory.write_many_async
                          (Memclient.mem ctx.Cluster.client i)
                          ~from:r.pid ~region ~values:nones)
                  in
                  ignore (Par.await_k truncs quorum);
                  ckpt_up_to := up_to;
                  Stats.bump ctx.Cluster.ctx_stats "smr.checkpoints"
                end
                else deposed := true
              end
            in
            (* A restarted memory announced itself (via the Mem_restart
               telemetry event): transfer it a full snapshot. *)
            let serve_rejoins () =
              match Mailbox.drain r.rejoin with
              | [] -> ()
              | mids -> (
                  (* Leadership proof before a state transfer: rewrite
                     the term lease quorum-acked.  All-ack means we still
                     hold write permission on a quorum, so every
                     committed entry is ours or was adopted by our
                     recovery — the transfer cannot mask an entry a
                     newer-term leader committed.  On any nak we are
                     deposed — but the nak may be the restarted memory
                     itself (fresh epoch), not a rival, so the drained
                     mids go BACK on the mailbox: whoever leads next
                     (possibly this replica, re-recovered under a higher
                     term) must still serve the transfer.  A rival that
                     heard the same Mem_restart events repairs twice;
                     the transfer is stale-filtered, so that is safe. *)
                  let writes =
                    Memclient.write_all_async ctx.Cluster.client ~region
                      ~reg:lease_reg (Codec.int_field term)
                  in
                  let completed = Par.await_k writes quorum in
                  match List.for_all (fun (_, w) -> w = Memory.Ack) completed with
                  | false ->
                      deposed := true;
                      List.iter (Mailbox.send r.rejoin) mids
                  | true ->
                      let entries =
                        List.init !ckpt_up_to (fun i -> Hashtbl.find stored (i + 1))
                      in
                      let tail =
                        List.init (!next - 1 - !ckpt_up_to) (fun i ->
                            let index = !ckpt_up_to + i + 1 in
                            (index, Hashtbl.find stored index))
                      in
                      List.iter
                        (fun mid ->
                          spawn_repair ctx r ~term ~up_to:!ckpt_up_to ~entries
                            ~tail mid)
                        (List.sort_uniq compare mids))
            in
            (* A restarted replica asked to catch up: send it the whole
               committed log as one snapshot message — it installs the
               state instead of replaying (entries below the checkpoint
               may no longer exist in the log anyway). *)
            let serve_catchups () =
              match Mailbox.drain r.catchups with
              | [] -> ()
              | pids ->
                  let up_to = !next - 1 in
                  let entries = List.init up_to (fun i -> Hashtbl.find stored (i + 1)) in
                  List.iter
                    (fun dst ->
                      Network.send ep ~dst (encode_msg (Snapshot { up_to; entries })))
                    (List.sort_uniq compare pids)
            in
            while (not !deposed) && (not r.stopped)
                  && Engine.now ctx.Cluster.ctx_engine < r.cfg.serve_until
                  && Omega.leader ctx.Cluster.ctx_omega = r.pid do
              serve_rejoins ();
              serve_catchups ();
              (* Linearizable reads (Mu-style): confirm the reign is
                 intact with one permission-protected write to a scratch
                 lease register — it naks iff a rival grabbed the
                 permission — then answer from local applied state. *)
              (match Mailbox.drain r.reads with
              | [] -> ()
              | readers ->
                  Prof.scope "pmp.read.lease" (fun () ->
                      Prof.bump "smr.reads.confirmed" (List.length readers);
                      Stats.bump ctx.Cluster.ctx_stats "smr.reads.confirm";
                      let writes =
                        Memclient.write_all_async ctx.Cluster.client ~region
                          ~reg:lease_reg (Codec.int_field term)
                      in
                      let completed = Par.await_k writes (m - f_m) in
                      if
                        List.for_all (fun (_, w) -> w = Memory.Ack) completed
                      then
                        List.iter
                          (fun (client, seq) ->
                            Network.send ep ~dst:client
                              (encode_msg
                                 (Read_reply
                                    { client; seq; up_to = r.applied_up_to })))
                          readers
                      else deposed := true));
              match Mailbox.recv_timeout r.requests 4.0 with
              | None -> ()
              | Some (client_pid, seq, cmd) -> (
                  match Hashtbl.find_opt dedup (client_pid, seq) with
                  | Some index ->
                      (* a retry of a committed request: just re-ack *)
                      Network.send ep ~dst:client_pid
                        (encode_msg (Ack { client = client_pid; seq; index }))
                  | None ->
                      if !next > r.cfg.max_entries then deposed := true
                      else begin
                        let meta = encode_cmd_meta ~client:client_pid ~seq ~cmd in
                        if append ctx r ~term ~index:!next ~cmd:meta then begin
                          let index = !next in
                          incr next;
                          Hashtbl.replace dedup (client_pid, seq) index;
                          Hashtbl.replace stored index meta;
                          Mailbox.send r.pending (index, cmd);
                          Network.broadcast ep (encode_msg (Commit { index; cmd }));
                          Network.send ep ~dst:client_pid
                            (encode_msg (Ack { client = client_pid; seq; index }));
                          maybe_checkpoint ()
                        end
                        else deposed := true
                      end)
            done
      end
    end
  done

let spawn_replica cluster ?(cfg = default_config) ~pid () =
  let r =
    {
      pid;
      cfg;
      applied = Queue.create ();
      applied_up_to = 0;
      current_term = 0;
      stopped = false;
      caught_up = false;
      subscribed = false;
      pending = Mailbox.create ();
      requests = Mailbox.create ();
      reads = Mailbox.create ();
      rejoin = Mailbox.create ();
      catchups = Mailbox.create ();
      commit_subs = [];
      recover_subs = [];
    }
  in
  Cluster.spawn cluster ~pid (fun ctx ->
      (* A (re)started replica begins from nothing: drop any pre-crash
         state and catch up from the current leader (snapshot install) —
         Cluster.restart_process re-runs this program from the top. *)
      Queue.clear r.applied;
      r.applied_up_to <- 0;
      r.current_term <- 0;
      r.stopped <- false;
      r.caught_up <- false;
      ignore (Mailbox.drain r.pending);
      ignore (Mailbox.drain r.requests);
      ignore (Mailbox.drain r.reads);
      ignore (Mailbox.drain r.catchups);
      (* Restarted-memory announcements: every replica listens, the
         current leader acts (see serve_rejoins). *)
      if not r.subscribed then begin
        r.subscribed <- true;
        Obs.subscribe ctx.Cluster.ctx_obs (fun ~at:_ ~actor:_ ev ->
            match (ev : Event.t) with
            | Event.Mem_restart { mid; _ } -> Mailbox.send r.rejoin mid
            | _ -> ())
      end;
      (* Only a restarted replica (now > 0) needs to catch up: ask the
         current leader for a snapshot until one arrives. *)
      if Engine.now ctx.Cluster.ctx_engine > 0.0 then
        ctx.Cluster.spawn_sub "smr.catchup" (fun () ->
            while
              (not r.stopped) && (not r.caught_up)
              && Engine.now ctx.Cluster.ctx_engine < cfg.serve_until
            do
              let leader =
                min (Omega.leader ctx.Cluster.ctx_omega) (cfg.replicas - 1)
              in
              if leader <> r.pid then
                Network.send ctx.Cluster.ep ~dst:leader
                  (encode_msg (Catch_up { pid = r.pid }));
              Engine.sleep 25.0
            done);
      (* Anti-entropy (off by default): a follower whose apply stream
         stalls — e.g. Commit broadcasts lost to a partition — asks the
         leader for a snapshot, reusing the restart catch-up path.  The
         guard keeps every steady-state run free of extra traffic: the
         fiber only speaks up when no entry has applied for a whole
         interval and it is not itself the leader. *)
      if cfg.anti_entropy_every > 0.0 then
        ctx.Cluster.spawn_sub "smr.anti-entropy" (fun () ->
            let last = ref (-1) in
            while
              (not r.stopped) && Engine.now ctx.Cluster.ctx_engine < cfg.serve_until
            do
              Engine.sleep cfg.anti_entropy_every;
              let leader =
                min (Omega.leader ctx.Cluster.ctx_omega) (cfg.replicas - 1)
              in
              if (not r.stopped) && leader <> r.pid && r.applied_up_to = !last
              then
                Network.send ctx.Cluster.ep ~dst:leader
                  (encode_msg (Catch_up { pid = r.pid }));
              last := r.applied_up_to
            done);
      ctx.Cluster.spawn_sub "smr.pump" (fun () -> pump ctx r);
      ctx.Cluster.spawn_sub "smr.applier" (fun () -> applier r);
      leader_loop ctx r);
  r

(* Stop a replica's loops (so a test's run can quiesce). *)
let stop r = r.stopped <- true

(* {2 Clients} *)

(* Linearizable read from a client: ask the leader; it lease-checks its
   reign and answers with its applied index. *)
let linearizable_read (ctx : _ Cluster.ctx) ~cfg ~seq ~timeout =
  let me = ctx.Cluster.pid in
  let deadline = Engine.now ctx.Cluster.ctx_engine +. timeout in
  let rec attempt () =
    if Engine.now ctx.Cluster.ctx_engine >= deadline then None
    else begin
      let leader = min (Omega.leader ctx.Cluster.ctx_omega) (cfg.replicas - 1) in
      Network.send ctx.Cluster.ep ~dst:leader
        (encode_msg (Read_request { client = me; seq }));
      let rec await () =
        let remaining = deadline -. Engine.now ctx.Cluster.ctx_engine in
        let wait = min 20.0 remaining in
        if wait <= 0. then None
        else
          match Network.recv_timeout ctx.Cluster.ep wait with
          | None -> attempt ()
          | Some (_, payload) -> (
              match decode_msg payload with
              | Some (Read_reply { client; seq = s; up_to }) when client = me && s = seq
                ->
                  Some up_to
              | Some
                  ( Read_reply _ (* another client's reply *)
                  | Request _ | Ack _ | Commit _ | Read_request _ | Catch_up _
                  | Snapshot _ )
              | None ->
                  await ())
      in
      await ()
    end
  in
  attempt ()

(* A client is an extra process (pid ≥ replicas) that submits commands to
   the Ω leader and waits for the ack, retrying on timeout. *)
let submit (ctx : _ Cluster.ctx) ~cfg ~seq ~cmd ~timeout =
  let me = ctx.Cluster.pid in
  let deadline = Engine.now ctx.Cluster.ctx_engine +. timeout in
  let rec attempt () =
    if Engine.now ctx.Cluster.ctx_engine >= deadline then None
    else begin
      let leader = min (Omega.leader ctx.Cluster.ctx_omega) (cfg.replicas - 1) in
      Network.send ctx.Cluster.ep ~dst:leader
        (encode_msg (Request { client = me; seq; cmd }));
      let rec await () =
        let remaining = deadline -. Engine.now ctx.Cluster.ctx_engine in
        let wait = min 20.0 remaining in
        if wait <= 0. then None
        else
          match Network.recv_timeout ctx.Cluster.ep wait with
          | None -> attempt () (* resend (possibly to a new leader) *)
          | Some (_, payload) -> (
              match decode_msg payload with
              | Some (Ack { client; seq = s; index }) when client = me && s = seq ->
                  Some index
              | Some
                  ( Ack _ (* another client's ack *)
                  | Request _ | Commit _ | Read_request _ | Read_reply _
                  | Catch_up _ | Snapshot _ )
              | None ->
                  await ())
      in
      await ()
    end
  in
  attempt ()
