(* A replicated key-value store: the state machine applied to the
   committed entries of the protected-memory log. *)

type command = Set of string * string | Delete of string | Noop

let encode_command = function
  | Set (k, v) -> Rdma_consensus.Codec.join3 "set" k v
  | Delete k -> Rdma_consensus.Codec.join2 "del" k
  | Noop -> "noop"

let decode_command s =
  match Rdma_consensus.Codec.split s with
  | [ "set"; k; v ] -> Some (Set (k, v))
  | [ "del"; k ] -> Some (Delete k)
  | [ "noop" ] -> Some Noop
  | _ -> None

type t = { table : (string, string) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let apply t = function
  | Set (k, v) -> Hashtbl.replace t.table k v
  | Delete k -> Hashtbl.remove t.table k
  | Noop -> ()

let apply_encoded t cmd =
  match decode_command cmd with Some c -> apply t c | None -> ()

let get t k = Hashtbl.find_opt t.table k

let size t = Hashtbl.length t.table

(* Materialize the store from a replica's applied log. *)
let of_log entries =
  let t = create () in
  List.iter (fun (_, cmd) -> apply_encoded t cmd) entries;
  t

let bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [] |> List.sort compare

(* Engine-agnostic hookups: materialize from, or live-follow, a packed
   replica of ANY consensus engine. *)
let of_replica run = of_log (Consensus_engine.applied run)

let attach run =
  let t = of_log (Consensus_engine.applied run) in
  Consensus_engine.on_commit run (fun ~index:_ ~cmd -> apply_encoded t cmd);
  t
