(** A replicated log on protected memory — Mu-style state machine
    replication built on the Protected Memory Paxos permission
    discipline: a steady-state append is ONE replicated write (two
    delays), because write success certifies the absence of rivals. *)

open Rdma_mm
open Rdma_mem

(** Engine identity (the ["pmp"] entry of {!Engines.all}). *)
val name : string

val descr : string

val region : string

val entry_reg : int -> string

(** The checkpoint register: a quorum-acked snapshot of the committed
    prefix ([up_to] plus the stored entries [1..up_to]).  Written only
    after the covered entries committed, so a checkpoint read from any
    single replica is safe to adopt; the log below it may be
    truncated. *)
val ckpt_reg : string

val encode_ckpt : up_to:int -> entries:string list -> string

val decode_ckpt : string -> (int * string list) option

val encode_entry : term:int -> cmd:string -> string

val decode_entry : string -> (int * string) option

(** Commands are logged with their (client, seq) origin, so a new leader
    can rebuild duplicate suppression from the log. *)
val encode_cmd_meta : client:int -> seq:int -> cmd:string -> string

val decode_cmd_meta : string -> (int * int * string) option

type msg =
  | Request of { client : int; seq : int; cmd : string }
  | Ack of { client : int; seq : int; index : int }
  | Commit of { index : int; cmd : string }
  | Read_request of { client : int; seq : int }
  | Read_reply of { client : int; seq : int; up_to : int }
  | Catch_up of { pid : int }
      (** a restarted replica asking the leader for a snapshot *)
  | Snapshot of { up_to : int; entries : string list }
      (** the committed prefix, installed wholesale (no log replay) *)

val encode_msg : msg -> string

val decode_msg : string -> msg option

(** The engine-shared configuration (see {!Consensus_engine.config} for
    field docs), re-exported so existing [Smr_log.config] users compile
    unchanged.  The lease knobs are velos-specific and ignored here;
    [anti_entropy_every > 0.] additionally lets stalled followers
    request snapshot catch-ups (off by default — pre-refactor
    behaviour). *)
type config = Consensus_engine.config = {
  replicas : int;
  max_entries : int;
  f_m : int option;
  max_terms : int;
  serve_until : float;
  checkpoint_every : int;
  anti_entropy_every : float;
  lease_duration : float;
  lease_violation : bool;
}

val default_config : config

(** Only replicas may take the log's exclusive write permission. *)
val legal_change : config -> Permission.legal_change

val setup_regions : 'm Cluster.t -> config -> unit

type replica

(** Applied entries, oldest first, as [(index, command)]. *)
val applied_entries : replica -> (int * string) list

val applied_count : replica -> int

(** The term of the replica's current (or last) reign; [0] before any. *)
val current_term : replica -> int

(** Commit-stream notification, fired on the applying fiber for every
    entry this replica applies; [f] must not suspend. *)
val on_commit : replica -> (index:int -> cmd:string -> unit) -> unit

(** Recovery notification: fired once a reign's recovery completed and
    this replica leads; [f] must not suspend. *)
val on_recover : replica -> (term:int -> unit) -> unit

val spawn_replica : string Cluster.t -> ?cfg:config -> pid:int -> unit -> replica

val stop : replica -> unit

(** Submit a command from a client process (pid ≥ replicas): sends to the
    Ω leader, awaits the ack, retries on timeout.  Returns the committed
    index, or [None] if [timeout] elapsed. *)
val submit :
  string Cluster.ctx -> cfg:config -> seq:int -> cmd:string -> timeout:float -> int option
[@@sim.yields]

(** Linearizable read: the leader confirms its reign with one
    permission-protected lease write, then reports how many entries are
    applied.  Returns that index, or [None] on timeout. *)
val linearizable_read :
  string Cluster.ctx -> cfg:config -> seq:int -> timeout:float -> int option
[@@sim.yields]
