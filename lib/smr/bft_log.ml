(* A Byzantine-tolerant replicated log: one Fast & Robust instance per
   slot (Theorem 4.9 composed sequentially).

   Every slot is a full weak-Byzantine-agreement instance living in its
   own namespace (regions and signature payloads are tagged per slot, so
   unanimity proofs and leader signatures cannot be replayed across
   slots).  In common executions the fixed leader appends to slot i with
   one signature and one replicated write — the Cheap Quorum fast path —
   and moves on: a Byzantine-tolerant log with 2-delay appends.  Under a
   Byzantine leader or asynchrony, each slot falls back to Preferential
   Paxos, and correct replicas still agree slot by slot.

   Tolerates fP < n/2 Byzantine processes and fM < m/2 memory crashes —
   the paper's bounds, applied per slot. *)

open Rdma_sim
open Rdma_mm
open Rdma_consensus

type config = {
  slots : int;
  base : Fast_robust.config; (* per-slot configuration template *)
}

let default_config = { slots = 3; base = Fast_robust.default_config }

let ns_of_slot i = Printf.sprintf "s%d." i

let slot_config cfg i = Fast_robust.config_with_ns ~base:cfg.base (ns_of_slot i)

(* One suffix-based policy covers every slot's leader region. *)
let legal_change ~n = Cheap_quorum.legal_change ~n

let setup_regions cluster cfg =
  for i = 0 to cfg.slots - 1 do
    Fast_robust.setup_regions cluster ~cfg:(slot_config cfg i) ()
  done

type handle = { decisions : Report.decision Ivar.t array (* per slot *) }

let decisions h = h.decisions

(* A replica appends through the slots strictly in order: slot i+1
   starts only once slot i has decided locally, so the applied log is
   always a dense prefix. *)
let spawn cluster ?(cfg = default_config) ~pid ~input_for () =
  let handle = { decisions = Array.make cfg.slots (Ivar.create ()) } in
  for i = 0 to cfg.slots - 1 do
    handle.decisions.(i) <- Ivar.create ()
  done;
  Cluster.spawn cluster ~pid (fun ctx ->
      for i = 0 to cfg.slots - 1 do
        let d =
          Fast_robust.attach ctx ~cfg:(slot_config cfg i) ~input:(input_for ~slot:i) ()
        in
        Ivar.on_fill d (fun v -> ignore (Ivar.try_fill handle.decisions.(i) v));
        (* strict slot order *)
        ignore (Ivar.await handle.decisions.(i))
      done);
  handle

(* Committed prefix as seen by one replica. *)
let applied h =
  let rec collect i acc =
    if i >= Array.length h.decisions then List.rev acc
    else
      match Ivar.peek h.decisions.(i) with
      | Some d -> collect (i + 1) ((i, d.Report.value) :: acc)
      | None -> List.rev acc
  in
  collect 0 []

let run ?(cfg = default_config) ?(seed = 1) ?(faults = [])
    ?(byzantine : (int * (string Cluster.ctx -> unit)) list = []) ~n ~m ~input_for () =
  let cluster : string Cluster.t =
    Cluster.create ~seed ~legal_change:(legal_change ~n) ~n ~m ()
  in
  setup_regions cluster cfg;
  let handles = Array.make n None in
  for pid = 0 to n - 1 do
    match List.assoc_opt pid byzantine with
    | Some behaviour -> Cluster.spawn_byzantine cluster ~pid behaviour
    | None ->
        handles.(pid) <-
          Some
            (spawn cluster ~cfg ~pid
               ~input_for:(fun ~slot -> input_for ~pid ~slot)
               ())
  done;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let reports =
    Array.init cfg.slots (fun slot ->
        let decisions =
          Array.map
            (function
              | Some h -> Ivar.peek h.decisions.(slot)
              | None -> None)
            handles
        in
        Report.of_stats
          ~algorithm:(Printf.sprintf "bft-log[%d]" slot)
          ~n ~m ~decisions
          ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
          ~steps:(Engine.steps (Cluster.engine cluster)) ())
  in
  (reports, List.map fst byzantine)
