(* The pluggable consensus-engine interface behind the SMR stack: one
   shared config record, one module type every engine implements, and an
   existential pack so [Kv]/[Lock_service]/chaos/bench code is written
   once against any engine. *)

open Rdma_mm
open Rdma_mem

type config = {
  replicas : int;
  max_entries : int;
  f_m : int option;
  max_terms : int;
  serve_until : float;
  checkpoint_every : int;
  anti_entropy_every : float;
  lease_duration : float;
  lease_violation : bool;
}

let default_config =
  {
    replicas = 3;
    max_entries = 64;
    f_m = None;
    max_terms = 32;
    serve_until = 2000.0;
    checkpoint_every = 0;
    anti_entropy_every = 0.0;
    lease_duration = 0.0;
    lease_violation = false;
  }

module type S = sig
  val name : string

  val descr : string

  val region : string

  val legal_change : config -> Permission.legal_change

  val setup_regions : 'm Cluster.t -> config -> unit

  type replica

  val spawn_replica :
    string Cluster.t -> ?cfg:config -> pid:int -> unit -> replica

  val applied_entries : replica -> (int * string) list

  val applied_count : replica -> int

  val current_term : replica -> int

  val on_commit : replica -> (index:int -> cmd:string -> unit) -> unit

  val on_recover : replica -> (term:int -> unit) -> unit

  val stop : replica -> unit

  val submit :
    string Cluster.ctx ->
    cfg:config ->
    seq:int ->
    cmd:string ->
    timeout:float ->
    int option

  val linearizable_read :
    string Cluster.ctx -> cfg:config -> seq:int -> timeout:float -> int option
end

type engine = (module S)

type running = Running : (module S with type replica = 'r) * 'r -> running

let spawn (module E : S) cluster ?cfg ~pid () =
  Running ((module E), E.spawn_replica cluster ?cfg ~pid ())

let applied (Running ((module E), r)) = E.applied_entries r

let applied_count (Running ((module E), r)) = E.applied_count r

let current_term (Running ((module E), r)) = E.current_term r

let on_commit (Running ((module E), r)) f = E.on_commit r f

let on_recover (Running ((module E), r)) f = E.on_recover r f

let stop (Running ((module E), r)) = E.stop r

let leader_hint cluster ~cfg =
  min (Omega.leader (Cluster.omega cluster)) (cfg.replicas - 1)

let on_leader_change cluster f =
  let omega = Cluster.omega cluster in
  let rec arm () =
    Omega.on_change omega
      ~want:(fun _ -> true)
      (fun () ->
        f (Omega.leader omega);
        arm ())
  in
  arm ()
