(** The pluggable consensus-engine interface behind the SMR stack.

    An engine is a replicated-log implementation: it owns a memory
    region layout, a replica program, and a client protocol, and it
    exposes the committed-command stream that the state machines
    ({!Kv}, {!Lock_service}) and the chaos workloads consume.  Two
    engines ship today: ["pmp"] ({!Smr_log}, the Mu-style log on the
    Protected Memory Paxos permission discipline) and ["velos"]
    ({!Velos_engine}, one-sided Paxos with passive memory replicas and
    leader leases on virtual time). *)

open Rdma_mm
open Rdma_mem

(** One configuration record shared by every engine, so [Kv],
    [Lock_service], the chaos scenarios and the bench harness run
    unmodified against any of them.  Engine-specific knobs carry a
    neutral default that other engines ignore (documented per field). *)
type config = {
  replicas : int;  (** replicas are processes [0 .. replicas-1] *)
  max_entries : int;
  f_m : int option;
  max_terms : int;
  serve_until : float;
      (** virtual time at which replicas stop serving (so runs quiesce) *)
  checkpoint_every : int;
      (** checkpoint (and truncate the log below) every this many
          committed entries; [0] disables checkpointing *)
  anti_entropy_every : float;
      (** followers chase missed commits every this many delays —
          pmp: periodic snapshot catch-up requests to the leader;
          velos: the passive-memory poll interval (velos treats [0.] as
          its default poll rate, pmp as "off", preserving pre-refactor
          behaviour) *)
  lease_duration : float;
      (** velos: how long a quorum-acked leader lease is valid, in
          virtual delays — a read served under a valid lease costs 0
          memory ops.  [0.] disables leases (every read pays a quorum
          round).  pmp ignores it (reads always pay a lease write) *)
  lease_violation : bool;
      (** velos, test fixture only: deliberately keep serving local
          reads after deposition/expiry — the stale-lease bug the chaos
          oracle must catch.  Never set outside tests *)
}

val default_config : config

(** What every engine provides.  Callback hooks ([on_commit],
    [on_recover]) run on the replica's applying fiber and must not
    suspend. *)
module type S = sig
  val name : string

  val descr : string

  (** The engine's memory region (one per memory). *)
  val region : string

  (** Only replicas may take the region's exclusive write permission. *)
  val legal_change : config -> Permission.legal_change

  val setup_regions : 'm Cluster.t -> config -> unit

  type replica

  val spawn_replica :
    string Cluster.t -> ?cfg:config -> pid:int -> unit -> replica

  (** Applied entries, oldest first, as [(index, command)] — the commit
      stream read back wholesale. *)
  val applied_entries : replica -> (int * string) list

  val applied_count : replica -> int

  (** The term of the replica's current (or last) reign; [0] before any. *)
  val current_term : replica -> int

  (** Commit-stream notification: [f ~index ~cmd] on every applied entry. *)
  val on_commit : replica -> (index:int -> cmd:string -> unit) -> unit

  (** Recovery hook: [f ~term] once a reign's recovery (state
      reconstruction + rewrite) completed and the replica leads. *)
  val on_recover : replica -> (term:int -> unit) -> unit

  val stop : replica -> unit

  (** Submit a command from a client process (pid ≥ replicas): routes to
      the Ω leader, awaits the ack, retries on timeout.  Returns the
      committed index, or [None] if [timeout] elapsed. *)
  val submit :
    string Cluster.ctx ->
    cfg:config ->
    seq:int ->
    cmd:string ->
    timeout:float ->
    int option
  [@@sim.yields]

  (** Linearizable read: how many entries are committed, confirmed
      against rivals (permission-protected lease write, or a still-valid
      leader lease).  [None] on timeout. *)
  val linearizable_read :
    string Cluster.ctx -> cfg:config -> seq:int -> timeout:float -> int option
  [@@sim.yields]
end

type engine = (module S)

(** A replica packed with its engine, for engine-agnostic consumers
    ({!Kv.of_replica}, the chaos workloads, the bench harness). *)
type running = Running : (module S with type replica = 'r) * 'r -> running

(** Spawn a replica of [engine] and pack it. *)
val spawn :
  engine -> string Cluster.t -> ?cfg:config -> pid:int -> unit -> running

val applied : running -> (int * string) list

val applied_count : running -> int

val current_term : running -> int

val on_commit : running -> (index:int -> cmd:string -> unit) -> unit

val on_recover : running -> (term:int -> unit) -> unit

val stop : running -> unit

(** {2 Leader identity — shared by every engine}

    Both engines route clients with the same Ω discipline, so leader
    identity and change notification live here rather than per-engine. *)

(** The replica the Ω oracle currently points at (clamped to the replica
    range, as the client protocols do). *)
val leader_hint : 'm Cluster.t -> cfg:config -> int

(** Persistent leadership-change notification: [f leader] on every
    subsequent Ω change (re-armed after each firing; not retroactive). *)
val on_leader_change : 'm Cluster.t -> (int -> unit) -> unit
