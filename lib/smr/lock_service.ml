(* A distributed lock service: a second state machine over the
   protected-memory log.

   Locks are granted in request order (FIFO per lock) and every grant
   carries a monotonically increasing *fencing token*, so that even a
   client that acquires a lock and then stalls can be safely fenced off
   by the storage it talks to — the standard discipline for locks built
   on replicated logs.  The determinism of the state machine plus the
   agreement of the log is what makes replicas dispense identical
   grants. *)

type command =
  | Acquire of { lock : string; owner : string }
  | Release of { lock : string; owner : string }

let encode_command = function
  | Acquire { lock; owner } -> Rdma_consensus.Codec.join3 "acq" lock owner
  | Release { lock; owner } -> Rdma_consensus.Codec.join3 "rel" lock owner

let decode_command s =
  match Rdma_consensus.Codec.split3 s with
  | Some ("acq", lock, owner) -> Some (Acquire { lock; owner })
  | Some ("rel", lock, owner) -> Some (Release { lock; owner })
  | _ -> None

type lock_state = {
  mutable holder : (string * int) option; (* owner, fencing token *)
  waiters : string Queue.t;
}

type t = {
  locks : (string, lock_state) Hashtbl.t;
  mutable next_token : int;
  mutable grants : (string * string * int) list; (* (lock, owner, token), newest first *)
}

let create () = { locks = Hashtbl.create 16; next_token = 0; grants = [] }

let state_of t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s
  | None ->
      let s = { holder = None; waiters = Queue.create () } in
      Hashtbl.add t.locks lock s;
      s

let grant t lock s owner =
  t.next_token <- t.next_token + 1;
  s.holder <- Some (owner, t.next_token);
  t.grants <- (lock, owner, t.next_token) :: t.grants

let apply t = function
  | Acquire { lock; owner } -> (
      let s = state_of t lock in
      match s.holder with
      | None -> grant t lock s owner
      | Some (current, _) when String.equal current owner -> () (* reentrant no-op *)
      | Some _ ->
          if not (Queue.fold (fun acc w -> acc || String.equal w owner) false s.waiters)
          then Queue.push owner s.waiters)
  | Release { lock; owner } -> (
      let s = state_of t lock in
      match s.holder with
      | Some (current, _) when String.equal current owner -> (
          s.holder <- None;
          (* hand over to the next waiter, if any *)
          match Queue.take_opt s.waiters with
          | Some next -> grant t lock s next
          | None -> ())
      | Some _ | None -> () (* releasing a lock one does not hold: no-op *))

let apply_encoded t cmd =
  match decode_command cmd with Some c -> apply t c | None -> ()

let holder t lock =
  match Hashtbl.find_opt t.locks lock with Some s -> s.holder | None -> None

let waiting t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> Queue.fold (fun acc w -> w :: acc) [] s.waiters |> List.rev
  | None -> []

(* All grants ever made, oldest first, as (lock, owner, token). *)
let grant_history t = List.rev t.grants

(* Materialize from a replica's applied log. *)
let of_log entries =
  let t = create () in
  List.iter (fun (_, cmd) -> apply_encoded t cmd) entries;
  t

(* Engine-agnostic hookups, as in {!Kv}. *)
let of_replica run = of_log (Consensus_engine.applied run)

let attach run =
  let t = of_log (Consensus_engine.applied run) in
  Consensus_engine.on_commit run (fun ~index:_ ~cmd -> apply_encoded t cmd);
  t
