(** The ["velos"] consensus engine: {!Rdma_consensus.Velos} (one-sided
    Paxos with passive memory replicas and leader leases on virtual
    time) behind the shared {!Consensus_engine.S} signature.

    Config mapping: [anti_entropy_every > 0.] becomes the follower poll
    interval ([0.] means the engine's default rate — velos followers
    always poll, it is their only way to learn); the lease knobs are
    native here. *)

include Consensus_engine.S

(** The underlying engine-specific replica, for tests that assert on
    velos internals. *)
val to_velos : Consensus_engine.config -> Rdma_consensus.Velos.config
