(* The "velos" entry of {!Engines.all}: adapts {!Rdma_consensus.Velos}
   (which keeps its own config record — lib/core cannot see lib/smr) to
   the shared {!Consensus_engine.S} signature. *)

open Rdma_consensus

let name = "velos"

let descr =
  "One-sided Paxos on passive memory replicas: batched entry+watermark \
   writes, follower polling, leader leases (a leased read = 0 memory ops)"

let region = Velos.region

(* [anti_entropy_every] is the shared "how eagerly do followers chase
   missed commits" knob: for velos it IS the poll interval (0. = the
   engine's default rate — polling cannot be turned off, it is the only
   way followers learn). *)
let to_velos (cfg : Consensus_engine.config) : Velos.config =
  {
    Velos.replicas = cfg.replicas;
    max_entries = cfg.max_entries;
    f_m = cfg.f_m;
    max_terms = cfg.max_terms;
    serve_until = cfg.serve_until;
    checkpoint_every = cfg.checkpoint_every;
    poll_every =
      (if cfg.anti_entropy_every > 0.0 then cfg.anti_entropy_every
       else Velos.default_config.Velos.poll_every);
    lease_duration = cfg.lease_duration;
    lease_violation = cfg.lease_violation;
  }

let legal_change cfg = Velos.legal_change (to_velos cfg)

let setup_regions cluster cfg = Velos.setup_regions cluster (to_velos cfg)

type replica = Velos.replica

let spawn_replica cluster ?(cfg = Consensus_engine.default_config) ~pid () =
  Velos.spawn_replica cluster ~cfg:(to_velos cfg) ~pid ()

let applied_entries = Velos.applied_entries

let applied_count = Velos.applied_count

let current_term = Velos.current_term

let on_commit = Velos.on_commit

let on_recover = Velos.on_recover

let stop = Velos.stop

let submit ctx ~cfg ~seq ~cmd ~timeout =
  Velos.submit ctx ~cfg:(to_velos cfg) ~seq ~cmd ~timeout

let linearizable_read ctx ~cfg ~seq ~timeout =
  Velos.linearizable_read ctx ~cfg:(to_velos cfg) ~seq ~timeout
