(** One-shot SMR driver behind [rdma_agreement run smr]: [n] replicas of
    the chosen engine plus one closed-loop client submitting [inputs] in
    order.  Replicas decide their joined applied logs; the client decides
    the join of its inputs once all are acked — agreement across them
    checks the engine end to end under the CLI fault schedule. *)

val default_cfg : replicas:int -> Consensus_engine.config

val run :
  engine:Consensus_engine.engine ->
  ?cfg:Consensus_engine.config ->
  seed:int ->
  n:int ->
  m:int ->
  inputs:string array ->
  faults:Rdma_consensus.Fault.t list ->
  prepare:(string Rdma_mm.Cluster.t -> unit) ->
  unit ->
  Rdma_consensus.Report.t
