(** The consensus-engine registry — one static list every consumer
    (CLI [--engine] flags, [list-engines], chaos scenario generation,
    the bench harness) enumerates, so a future engine drops in by
    adding one line to {!all}. *)

val all : Consensus_engine.engine list

(** Engine names in registry order (["pmp"; "velos"]). *)
val names : string list

val find : string -> Consensus_engine.engine option

(** Like {!find} but raises [Invalid_argument] with the known names. *)
val get : string -> Consensus_engine.engine
