(* One-shot SMR driver behind [rdma_agreement run smr --engine E]: [n]
   replicas of the chosen engine plus one client (pid [n]) that submits
   the [inputs] in order — retrying each until it is acked — and closes
   with a linearizable read.  Every surviving replica decides its joined
   applied log at [t_decide]; the client decides the join of its inputs
   once all of them are acked.  Agreement across those decisions checks
   the engine end to end under the CLI's fault schedule. *)

open Rdma_sim
open Rdma_mm
open Rdma_obs
open Rdma_consensus

(* Mirrors the chaos workload timeline (lib/chaos/workloads.ml): clients
   stop by [t_stop], decisions are read at [t_decide], replicas quiesce
   at [serve_until]. *)
let t_stop = 120.0

let t_decide = 260.0

let default_cfg ~replicas =
  {
    Consensus_engine.default_config with
    replicas;
    max_entries = 48;
    serve_until = 300.0;
    checkpoint_every = 5;
    anti_entropy_every = 10.0;
    lease_duration = 20.0;
  }

let run ~engine ?cfg ~seed ~n ~m ~inputs ~faults ~prepare () =
  let module E = (val engine : Consensus_engine.S) in
  let cfg =
    match cfg with
    | Some c -> { c with Consensus_engine.replicas = n }
    | None -> default_cfg ~replicas:n
  in
  let total = n + 1 in
  let cluster : string Cluster.t =
    Cluster.create ~seed ~legal_change:(E.legal_change cfg) ~n:total ~m ()
  in
  E.setup_regions cluster cfg;
  let engine_t = Cluster.engine cluster in
  let decisions : Report.decision option array = Array.make total None in
  let decide ~pid value =
    decisions.(pid) <- Some { Report.value; at = Engine.now engine_t };
    Obs.event (Cluster.obs cluster)
      ~actor:(Printf.sprintf "p%d" pid)
      (Event.Decide { pid; value })
  in
  let replicas = Array.init n (fun pid -> E.spawn_replica cluster ~cfg ~pid ()) in
  Array.iteri
    (fun pid r ->
      Engine.schedule engine_t t_decide (fun () ->
          if not (Cluster.is_crashed cluster pid) then
            decide ~pid
              (String.concat ";" (List.map snd (E.applied_entries r)))))
    replicas;
  let client = n in
  Cluster.spawn cluster ~pid:client (fun ctx ->
      let acked = ref 0 in
      Array.iteri
        (fun seq cmd ->
          (* Retry past leader failovers: a committed-but-unacked submit
             is deduplicated by (client, seq) on the next attempt. *)
          let rec attempt () =
            if Engine.now ctx.Cluster.ctx_engine < t_stop then
              match E.submit ctx ~cfg ~seq ~cmd ~timeout:30.0 with
              | Some _ -> incr acked
              | None -> attempt ()
          in
          if !acked = seq then attempt ())
        inputs;
      ignore
        (E.linearizable_read ctx ~cfg ~seq:1000 ~timeout:30.0 : int option);
      if !acked = Array.length inputs then
        decide ~pid:client (String.concat ";" (Array.to_list inputs)));
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Report.of_stats
    ~algorithm:(Printf.sprintf "smr-%s" E.name)
    ~n:total ~m ~decisions
    ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
    ~steps:(Engine.steps engine_t)
    ()
