(* The engine registry: a static list (simlint D6 bans module-level
   mutable registration state in lib/), so adding an engine means
   adding a line here — which is the point: the CLI, the chaos
   scenarios and the bench harness all enumerate this list instead of
   hard-coding engine names. *)

let all : Consensus_engine.engine list =
  [ (module Smr_log); (module Velos_engine) ]

let names = List.map (fun (module E : Consensus_engine.S) -> E.name) all

let find name =
  List.find_opt (fun (module E : Consensus_engine.S) -> E.name = name) all

let get name =
  match find name with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown engine %S (have: %s)" name
           (String.concat ", " names))
