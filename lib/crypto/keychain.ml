(* The paper's signature primitives: sign(v) and sValid(p, v) (Section 3).

   Simulated unforgeability: each process receives a [signer] capability
   holding its own secret; the per-process secrets live only inside this
   module, so a Byzantine *program* in the simulation can sign only as
   itself.  Verification goes through the shared [t], which exposes no
   secrets.  Tags are HMAC-SHA256 over (signer id, payload). *)

type t = {
  secrets : string array;
  mutable on_sign : int -> unit; (* receives the signer's pid *)
  mutable on_verify : ok:bool -> unit; (* receives the verdict *)
}

type signer = { pid : int; chain : t }

type signature = { author : int; tag : string }

let create ?(seed = 42) ~n () =
  let secrets =
    Array.init n (fun i -> Sha256.digest_string (Printf.sprintf "secret-%d-%d" seed i))
  in
  { secrets; on_sign = (fun _ -> ()); on_verify = (fun ~ok:_ -> ()) }

let set_hooks t ~on_sign ~on_verify =
  t.on_sign <- on_sign;
  t.on_verify <- on_verify

let signer t pid =
  if pid < 0 || pid >= Array.length t.secrets then
    invalid_arg "Keychain.signer: no such process";
  { pid; chain = t }

let signer_id s = s.pid

let payload_key author payload = Printf.sprintf "%d|%s" author payload

(* [sign]/[valid] are synchronous (no engine suspension inside), so a
   profiler scope here is a legal work-attribution frame: the SHA-256
   blocks of the HMAC land under crypto.sign / crypto.verify. *)
let sign signer payload =
  let chain = signer.chain in
  Rdma_obs.Prof.scope "crypto.sign" (fun () ->
      Rdma_obs.Prof.bump "crypto.signs" 1;
      chain.on_sign signer.pid;
      { author = signer.pid;
        tag =
          Hmac.mac ~key:chain.secrets.(signer.pid)
            (payload_key signer.pid payload) })

(* A deliberately bogus signature claiming authorship by [author]; used by
   Byzantine behaviours in tests.  Verification rejects it (with
   overwhelming probability in the real world; with certainty here unless
   the forger guessed the HMAC). *)
let forge ~author payload =
  { author; tag = Hmac.mac ~key:"forged" (payload_key author payload) }

let valid t ~author payload signature =
  Rdma_obs.Prof.scope "crypto.verify" (fun () ->
      Rdma_obs.Prof.bump "crypto.verifies" 1;
      let ok =
        signature.author = author
        && Hmac.equal signature.tag
             (Hmac.mac ~key:t.secrets.(author) (payload_key author payload))
      in
      t.on_verify ~ok;
      ok)

(* sValid(p, v) where the signature carries its claimed author. *)
let s_valid t payload signature = valid t ~author:signature.author payload signature

let author signature = signature.author

let tag_hex signature = Sha256.to_hex signature.tag

(* Wire encoding, so signatures can be embedded in signed histories. *)
let encode s = Printf.sprintf "%d:%s" s.author (Sha256.to_hex s.tag)

let decode str =
  match String.index_opt str ':' with
  | None -> None
  | Some i -> (
      let author = int_of_string_opt (String.sub str 0 i) in
      let hex = String.sub str (i + 1) (String.length str - i - 1) in
      match author with
      | None -> None
      | Some author ->
          if String.length hex <> 64 then None
          else
            let unhex c =
              match c with
              | '0' .. '9' -> Char.code c - Char.code '0'
              | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
              | _ -> raise Exit
            in
            (try
               let tag =
                 String.init 32 (fun j ->
                     Char.chr ((unhex hex.[2 * j] lsl 4) lor unhex hex.[(2 * j) + 1]))
               in
               Some { author; tag }
             with Exit -> None))
