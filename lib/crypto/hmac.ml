(* HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors. *)

let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest_string key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\x00'

let xor_pad key byte =
  String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor byte))

let mac ~key message =
  Rdma_obs.Prof.bump "hmac.macs" 1;
  let key = normalize_key key in
  let inner = Sha256.digest_string (xor_pad key 0x36 ^ message) in
  Sha256.digest_string (xor_pad key 0x5c ^ inner)

let mac_hex ~key message = Sha256.to_hex (mac ~key message)

(* Constant-time-style comparison; not security-critical in a simulation
   but cheap to do right. *)
let equal a b =
  String.length a = String.length b
  &&
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code b.[i])) a;
  !diff = 0
