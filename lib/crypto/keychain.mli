(** The paper's signature primitives, [sign(v)] and [sValid(p, v)]
    (Section 3), with simulated unforgeability: each process holds only its
    own {!signer} capability, and per-process secrets never leave this
    module. *)

type t

(** Capability to sign as one particular process. *)
type signer

type signature

val create : ?seed:int -> n:int -> unit -> t

(** Install counters (used by the cluster to count signatures and
    verifications per run); [on_sign] receives the signer's pid,
    [on_verify] the verification verdict. *)
val set_hooks : t -> on_sign:(int -> unit) -> on_verify:(ok:bool -> unit) -> unit

(** The signing capability of process [pid].  Handed to a process by the
    cluster at registration; honest and Byzantine programs alike can only
    obtain their own. *)
val signer : t -> int -> signer

val signer_id : signer -> int

(** [sign signer v] — the paper's [sign(v)]. *)
val sign : signer -> string -> signature

(** A bogus signature claiming authorship by [author]; for Byzantine test
    behaviours.  Always fails {!valid}. *)
val forge : author:int -> string -> signature

(** [valid t ~author v s] — the paper's [sValid(author, v)]. *)
val valid : t -> author:int -> string -> signature -> bool

(** [s_valid t v s] validates [s] against its claimed author. *)
val s_valid : t -> string -> signature -> bool

val author : signature -> int

val tag_hex : signature -> string

val encode : signature -> string

val decode : string -> signature option
