(* A complete simulated M&M system: n processes, m memories, a network,
   signatures, and an Ω oracle, with fault injection.

   ['m] is the algorithm's message type.  Each algorithm run builds one
   cluster, registers regions on the memories, spawns its process
   programs, injects the schedule's faults, and runs the engine to
   quiescence. *)

open Rdma_sim
open Rdma_mem
open Rdma_net
open Rdma_crypto
open Rdma_obs

type 'm t = {
  engine : Engine.t;
  stats : Stats.t;
  trace : Trace.t;
  n : int;
  m : int;
  keychain : Keychain.t;
  memories : Memory.t array;
  net : 'm Network.t;
  omega : Omega.t;
  fibers : Engine.fiber option array;
  sub_fibers : Engine.fiber list array;
  crashed : bool array;
  byzantine : bool array;
  (* the program each pid was spawned with, for machine restarts: a
     restarted process re-runs its program from the top — no state
     survives except what the program itself recovers from the memories *)
  programs : (int -> unit) option array;
  mutable auto_leader : bool;
      (* on leader crash, Ω repoints to the lowest-id correct process
         after [detection_delay] *)
  mutable detection_delay : float;
}

(* The capability bundle handed to a process program.  This is all a
   program (honest or Byzantine) ever sees of the system. *)
type 'm ctx = {
  pid : int;
  cluster_n : int;
  cluster_m : int;
  ctx_engine : Engine.t;
  client : Memclient.t;
  ep : 'm Network.endpoint;
  signer : Keychain.signer;
  chain : Keychain.t;
  ctx_omega : Omega.t;
  ctx_stats : Stats.t;
  ctx_trace : Trace.t;
  ctx_obs : Obs.t;
  (* Spawn an auxiliary fiber belonging to this process: it dies with the
     process when a crash is injected. *)
  spawn_sub : string -> (unit -> unit) -> unit;
}

(* Eventually-accurate failure detection: after the detection delay, if
   Ω still points at a crashed process, repoint to the lowest-id live
   correct one (falling back to any live process when every survivor is
   Byzantine — a configuration outside every fault model, but Ω should
   not dangle).  Choosing the target at fire time (not at scheduling
   time) keeps Ω correct when several processes crash together. *)
let schedule_repoint t =
  Engine.schedule t.engine t.detection_delay (fun () ->
      if t.crashed.(Omega.leader t.omega) then begin
        let live = List.filter (fun p -> not t.crashed.(p)) (List.init t.n Fun.id) in
        match List.filter (fun p -> not t.byzantine.(p)) live with
        | next :: _ -> Omega.set_leader t.omega next
        | [] -> (
            match live with
            | next :: _ -> Omega.set_leader t.omega next
            | [] -> ())
      end)

let create ?(seed = 1) ?(max_steps = 20_000_000) ?(latency = 1.0)
    ?(legal_change = Permission.static_permissions) ?(initial_leader = 0)
    ?(ordering = Ordering.Strict) ~n ~m () =
  let engine = Engine.create ~max_steps ~seed () in
  let stats = Stats.create () in
  let trace = Trace.create () in
  let keychain = Keychain.create ~seed ~n () in
  let obs = Engine.obs engine in
  Keychain.set_hooks keychain
    ~on_sign:(fun pid ->
      Stats.incr_signatures stats;
      Stats.bump stats (Printf.sprintf "sigs.p%d" pid);
      Obs.event obs ~actor:(Printf.sprintf "p%d" pid) (Event.Sign { pid }))
    ~on_verify:(fun ~ok ->
      Stats.incr_verifications stats;
      Obs.event obs ~actor:"crypto" (Event.Verify { ok }));
  (* The run's seed also keys each memory's per-op ordering stream, so a
     chaos schedule replays its weak-mode lag/reorder decisions
     verbatim. *)
  let memories =
    Array.init m (fun mid ->
        Memory.create ~one_way:(latency *. 1.0) ~legal_change ~ordering ~seed
          ~engine ~stats ~mid ())
  in
  let net = Network.create ~latency ~engine ~stats ~n () in
  let omega = Omega.create ~engine ~initial:initial_leader in
  let t =
    {
      engine;
      stats;
      trace;
      n;
      m;
      keychain;
      memories;
      net;
      omega;
      fibers = Array.make n None;
      sub_fibers = Array.make n [];
      crashed = Array.make n false;
      byzantine = Array.make n false;
      programs = Array.make n None;
      auto_leader = true;
      detection_delay = 8.0;
    }
  in
  (* Eventual accuracy covers leadership changes too: if Ω is ever
     pointed at an already-crashed process (a test-injected flap), the
     failure detector corrects it after the detection delay, exactly as
     it does for a crash of the current leader. *)
  let rec watch () =
    Omega.on_change t.omega
      ~want:(fun _ -> true)
      (fun () ->
        if t.auto_leader && t.crashed.(Omega.leader t.omega) then
          schedule_repoint t;
        watch ())
  in
  watch ();
  t

let engine t = t.engine

let stats t = t.stats

let trace t = t.trace

let n t = t.n

let m t = t.m

let memories t = t.memories

let memory t i = t.memories.(i)

(* Install a memory-ordering model on every memory — the chaos harness
   applies this at schedule-install time (t = 0) via
   [Fault.Set_ordering]. *)
let set_ordering t mode = Array.iter (fun m -> Memory.set_ordering m mode) t.memories

(* The model in force: the memories always share one mode ([Strict]
   with m = 0). *)
let ordering t =
  if Array.length t.memories = 0 then Ordering.Strict
  else Memory.ordering t.memories.(0)

let net t = t.net

let omega t = t.omega

let keychain t = t.keychain

let obs t = Engine.obs t.engine

let set_auto_leader t flag = t.auto_leader <- flag

(* Record every memory write/permission change and every message send
   into the cluster trace — heavyweight; for debugging and the CLI's
   --trace flag.  Implemented as a subscriber on the typed telemetry
   stream; the line formats predate the telemetry subsystem and are kept
   for the human-readable `--trace` output. *)
let enable_io_trace t =
  Obs.subscribe (obs t) (fun ~at ~actor ev ->
      let record fmt = Trace.recordf t.trace ~at ~actor fmt in
      match (ev : Event.t) with
      | Mem_write { pid; region; reg; value; ok; _ } ->
          if ok then record "p%d write %s/%s := %s -> ack" pid region reg value
          else record "p%d write %s/%s -> nak" pid region reg
      | Mem_perm { pid; region; applied; _ } ->
          record "p%d changePermission %s -> %s" pid region
            (if applied then "applied" else "refused")
      | Net_send { dst; _ } -> record "send -> p%d" dst
      | _ -> ())

let set_detection_delay t d = t.detection_delay <- d

(* Create the same region (name, permission, registers) on every memory —
   the replicated layout all the paper's algorithms use. *)
let add_region_everywhere t ~name ~perm ~registers =
  Array.iter (fun mem -> Memory.add_region mem ~name ~perm ~registers) t.memories

let ctx t pid =
  let spawn_sub name f =
    if not t.crashed.(pid) then begin
      let fiber = Engine.spawn t.engine (Printf.sprintf "p%d.%s" pid name) f in
      t.sub_fibers.(pid) <- fiber :: t.sub_fibers.(pid)
    end
  in
  {
    pid;
    cluster_n = t.n;
    cluster_m = t.m;
    ctx_engine = t.engine;
    client = Memclient.create ~pid ~memories:t.memories;
    ep = Network.endpoint t.net pid;
    signer = Keychain.signer t.keychain pid;
    chain = t.keychain;
    ctx_omega = t.omega;
    ctx_stats = t.stats;
    ctx_trace = t.trace;
    ctx_obs = Engine.obs t.engine;
    spawn_sub;
  }

let spawn t ~pid program =
  if t.fibers.(pid) <> None then invalid_arg "Cluster.spawn: pid already running";
  (* Every (re)start builds a fresh ctx: a restarted process holds no
     pre-crash capability state. *)
  t.programs.(pid) <- Some (fun pid -> program (ctx t pid));
  let c = ctx t pid in
  let fiber = Engine.spawn t.engine (Printf.sprintf "p%d" pid) (fun () -> program c) in
  t.fibers.(pid) <- Some fiber

(* Spawn a process running an adversarial program.  It gets the same
   capabilities as an honest process — no more: it cannot forge
   signatures, spoof senders, or bypass memory permissions. *)
let spawn_byzantine t ~pid program =
  t.byzantine.(pid) <- true;
  spawn t ~pid program

let is_byzantine t pid = t.byzantine.(pid)

let is_crashed t pid = t.crashed.(pid)

let correct_pids t =
  List.filter
    (fun p -> (not t.crashed.(p)) && not t.byzantine.(p))
    (List.init t.n Fun.id)

let byzantine_pids t =
  List.filter (fun p -> t.byzantine.(p)) (List.init t.n Fun.id)

let crashed_pids t = List.filter (fun p -> t.crashed.(p)) (List.init t.n Fun.id)

let crashed_mids t =
  List.filter (fun mid -> Memory.is_crashed t.memories.(mid)) (List.init t.m Fun.id)

let crash_process t pid =
  if not t.crashed.(pid) then begin
    t.crashed.(pid) <- true;
    (match t.fibers.(pid) with Some f -> Engine.cancel f | None -> ());
    List.iter Engine.cancel t.sub_fibers.(pid);
    Trace.recordf t.trace ~at:(Engine.now t.engine) ~actor:(Printf.sprintf "p%d" pid)
      "CRASH";
    if t.auto_leader then schedule_repoint t
  end

let crash_process_at t ~at pid =
  Engine.schedule t.engine (max 0. (at -. Engine.now t.engine)) (fun () ->
      crash_process t pid)

let crash_memory t mid =
  Memory.crash t.memories.(mid);
  Trace.recordf t.trace ~at:(Engine.now t.engine) ~actor:(Printf.sprintf "mu%d" mid)
    "MEMORY CRASH"

let crash_memory_at t ~at mid =
  Engine.schedule t.engine (max 0. (at -. Engine.now t.engine)) (fun () ->
      crash_memory t mid)

(* Bring a crashed memory back, empty, under a fresh epoch (see
   [Memory.restart]).  A benign no-op when the memory is not crashed, so
   a shrunk fault schedule that dropped the paired crash stays valid. *)
let restart_memory ?rejoin t mid =
  if Memory.is_crashed t.memories.(mid) then begin
    Memory.restart ?rejoin t.memories.(mid);
    Trace.recordf t.trace ~at:(Engine.now t.engine)
      ~actor:(Printf.sprintf "mu%d" mid)
      "MEMORY RESTART (epoch %d)"
      (Memory.epoch t.memories.(mid))
  end

let restart_memory_at ?rejoin t ~at mid =
  Engine.schedule t.engine (max 0. (at -. Engine.now t.engine)) (fun () ->
      restart_memory ?rejoin t mid)

(* Restart a crashed process: re-run the program it was spawned with,
   from the top, with a fresh ctx.  Only state the program explicitly
   recovers (from the memories or its spawn-time closure) survives.  A
   no-op when the process is not crashed or was never spawned. *)
let restart_process t pid =
  match t.programs.(pid) with
  | Some program when t.crashed.(pid) ->
      t.crashed.(pid) <- false;
      t.sub_fibers.(pid) <- [];
      let fiber =
        Engine.spawn t.engine (Printf.sprintf "p%d" pid) (fun () -> program pid)
      in
      t.fibers.(pid) <- Some fiber;
      Trace.recordf t.trace ~at:(Engine.now t.engine)
        ~actor:(Printf.sprintf "p%d" pid) "RESTART"
  | _ -> ()

let restart_process_at t ~at pid =
  Engine.schedule t.engine (max 0. (at -. Engine.now t.engine)) (fun () ->
      restart_process t pid)

(* A machine hosts one process and one memory (the M&M pairing used by
   Fault.Crash_machine): restart both. *)
let restart_machine ?rejoin t ~pid ~mid =
  restart_memory ?rejoin t mid;
  restart_process t pid

let restart_machine_at ?rejoin t ~at ~pid ~mid =
  Engine.schedule t.engine (max 0. (at -. Engine.now t.engine)) (fun () ->
      restart_machine ?rejoin t ~pid ~mid)

(* The run is the profiler's root frame: every fiber scope, crypto
   scope and root-attributed counter of this cluster's execution nests
   under [cluster.run] in perf snapshots and flamegraphs. *)
let run t = Prof.scope "cluster.run" (fun () -> Engine.run t.engine)

(* Re-raise the first exception that escaped a fiber, if any — tests call
   this so assertion failures inside process programs fail the test. *)
let check_errors t =
  match List.rev (Engine.errors t.engine) with
  | [] -> ()
  | (name, e) :: _ ->
      failwith (Printf.sprintf "fiber %s raised: %s" name (Printexc.to_string e))
