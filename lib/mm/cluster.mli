(** A complete simulated M&M system: n processes, m memories, network,
    signatures, Ω, and fault injection.  ['m] is the algorithm's message
    type. *)

open Rdma_sim
open Rdma_mem
open Rdma_net
open Rdma_crypto
open Rdma_obs

type 'm t

(** Capability bundle handed to a process program — all a program (honest
    or Byzantine) ever sees of the system. *)
type 'm ctx = {
  pid : int;
  cluster_n : int;
  cluster_m : int;
  ctx_engine : Engine.t;
  client : Memclient.t;
  ep : 'm Network.endpoint;
  signer : Keychain.signer;
  chain : Keychain.t;
  ctx_omega : Omega.t;
  ctx_stats : Stats.t;
  ctx_trace : Trace.t;
  ctx_obs : Obs.t;
  spawn_sub : string -> (unit -> unit) -> unit;
      (** Spawn an auxiliary fiber belonging to this process; it dies with
          the process when a crash is injected. *)
}

(** [ordering] (default {!Rdma_mem.Ordering.Strict}) installs a memory
    ordering model on every memory; the cluster seed keys the per-op
    lag/reorder streams, so the same seed replays the same weak-mode
    decisions. *)
val create :
  ?seed:int ->
  ?max_steps:int ->
  ?latency:float ->
  ?legal_change:Permission.legal_change ->
  ?initial_leader:int ->
  ?ordering:Rdma_mem.Ordering.mode ->
  n:int ->
  m:int ->
  unit ->
  'm t

val engine : 'm t -> Engine.t

val stats : 'm t -> Stats.t

val trace : 'm t -> Trace.t

val n : 'm t -> int

val m : 'm t -> int

val memories : 'm t -> Memory.t array

val memory : 'm t -> int -> Memory.t

(** Install a memory-ordering model on every memory (the chaos harness
    calls this at schedule-install time, t = 0). *)
val set_ordering : 'm t -> Rdma_mem.Ordering.mode -> unit

(** The model in force ({!Rdma_mem.Ordering.Strict} when m = 0). *)
val ordering : 'm t -> Rdma_mem.Ordering.mode

val net : 'm t -> 'm Network.t

val omega : 'm t -> Omega.t

val keychain : 'm t -> Keychain.t

(** The engine's telemetry collector (shared by every layer of this
    cluster). *)
val obs : 'm t -> Obs.t

(** Record every memory write/permission change and message send into
    the cluster trace (heavyweight; for debugging). *)
val enable_io_trace : 'm t -> unit

(** Whether Ω automatically repoints to the lowest-id live process when the
    current leader crashes (default true). *)
val set_auto_leader : 'm t -> bool -> unit

(** Failure-detection delay for the automatic Ω (default 8.0). *)
val set_detection_delay : 'm t -> float -> unit

(** Create the same region on every memory — the replicated layout the
    paper's algorithms use. *)
val add_region_everywhere :
  'm t -> name:string -> perm:Rdma_mem.Permission.t -> registers:string list -> unit

(** Build the capability bundle for [pid] without spawning (for tests). *)
val ctx : 'm t -> int -> 'm ctx

val spawn : 'm t -> pid:int -> ('m ctx -> unit) -> unit

(** Spawn an adversarial program with ordinary capabilities: it cannot
    forge signatures, spoof senders, or bypass memory permissions. *)
val spawn_byzantine : 'm t -> pid:int -> ('m ctx -> unit) -> unit

val is_byzantine : 'm t -> int -> bool

val is_crashed : 'm t -> int -> bool

val correct_pids : 'm t -> int list

(** Processes spawned with {!spawn_byzantine}. *)
val byzantine_pids : 'm t -> int list

(** Processes crashed so far (by injected faults or direct calls). *)
val crashed_pids : 'm t -> int list

(** Memories crashed so far. *)
val crashed_mids : 'm t -> int list

val crash_process : 'm t -> int -> unit

val crash_process_at : 'm t -> at:float -> int -> unit

val crash_memory : 'm t -> int -> unit

val crash_memory_at : 'm t -> at:float -> int -> unit

(** Bring a crashed memory back empty under a fresh epoch (see
    [Memory.restart]; [rejoin] defaults to [`Genesis]).  A benign no-op
    when the memory is not crashed, so shrunk fault schedules that
    dropped the paired crash stay valid. *)
val restart_memory : ?rejoin:[ `Genesis | `Quarantine ] -> 'm t -> int -> unit

val restart_memory_at :
  ?rejoin:[ `Genesis | `Quarantine ] -> 'm t -> at:float -> int -> unit

(** Restart a crashed process: re-run the program it was spawned with
    from the top, with a fresh capability bundle.  Only state the
    program explicitly recovers survives.  No-op when the process is not
    crashed or was never spawned. *)
val restart_process : 'm t -> int -> unit

val restart_process_at : 'm t -> at:float -> int -> unit

(** Restart the machine hosting process [pid] and memory [mid]: both come
    back with nothing but what they recover. *)
val restart_machine :
  ?rejoin:[ `Genesis | `Quarantine ] -> 'm t -> pid:int -> mid:int -> unit

val restart_machine_at :
  ?rejoin:[ `Genesis | `Quarantine ] -> 'm t -> at:float -> pid:int -> mid:int -> unit

(** Run the engine to quiescence. *)
val run : 'm t -> unit

(** Re-raise the first exception that escaped a fiber, if any. *)
val check_errors : 'm t -> unit
