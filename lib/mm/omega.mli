(** The Ω leader oracle — the standard liveness assumption (Section 3). *)

open Rdma_sim

type t

val create : engine:Engine.t -> initial:int -> t

(** The currently trusted leader. *)
val leader : t -> int

(** Leadership changes as [(time, leader)] pairs, oldest first. *)
val history : t -> (float * int) list

val set_leader : t -> int -> unit

(** Change leadership [delay] time units from now. *)
val set_leader_after : t -> float -> int -> unit

(** Block the calling fiber until this process is leader
    (Algorithm 7 line 9). *)
val wait_until_leader : t -> me:int -> unit [@@sim.yields]

(** Block until the leader differs from [prev]. *)
val wait_for_change : t -> prev:int -> unit [@@sim.yields]

(** Block while [unwanted leader] holds. *)
val wait_while : t -> unwanted:(int -> bool) -> unit [@@sim.yields]

(** One-shot callback at the first leadership change to a pid satisfying
    [want] (not retroactive). *)
val on_change : t -> want:(int -> bool) -> (unit -> unit) -> unit
