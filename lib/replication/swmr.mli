(** Fault-tolerant SWMR registers replicated over crash-prone memories —
    the Section 4.1 construction (write-all / wait-majority; a read
    returns v iff exactly one distinct non-⊥ value appears among a
    majority of replicas, else ⊥). *)

open Rdma_mem

(** A process's handle on the replicated registers of one region. *)
type handle

val attach : client:Memclient.t -> region:string -> handle

val majority : handle -> int

(** [Ack] iff all responding memories (a majority) acked; [Nak] means some
    memory refused — write permission was revoked there. *)
val write : handle -> reg:string -> string -> Memory.op_result [@@sim.yields]

val read : handle -> reg:string -> string option [@@sim.yields]

(** Like {!read} but also reports whether any replica nak'd the read. *)
val read_detailed : handle -> reg:string -> string option * bool [@@sim.yields]

(** Quorum read with write-back repair: when the responding majority
    agrees on one value v, every responding replica that returned ⊥, a
    divergent value, or a nak (e.g. a restarted memory whose register is
    stale) gets v written back, awaited, before v is returned.  The
    sweep waits up to [grace] (default 10 delays) for {e every} replica
    rather than settling for the first majority: under a weak ordering
    model ({!Ordering}) response times spread out, and a
    fastest-majority sweep can race past the very replica it exists to
    repair on every sweep of a bounded window.  Fewer than a majority of
    responses within [grace] returns ⊥.  Opt-in — [read] never repairs,
    because non-equivocating broadcast relies on divergent replicas
    staying observable.  Requires the caller to hold write permission on
    the region; repairs are counted on the ["swmr.repairs"] telemetry
    counter. *)
val read_repair : ?grace:float -> handle -> reg:string -> string option
[@@sim.yields]

(** Change the region's permission on every memory (majority-waited). *)
val change_permission : handle -> perm:Permission.t -> unit [@@sim.yields]
