(* Fault-tolerant SWMR registers over crash-prone memories.

   The construction of Section 4.1 ("Non-equivocation in our model"),
   after Afek et al. and Attiya-Bar-Noy-Dolev: a logical register is
   replicated in the same region/register slot of every memory.

   - write(v): write v to all memories, wait for a majority to respond.
   - read(): read from all memories, wait for a majority to respond; if
     exactly one distinct non-⊥ value v appears among the responses,
     return v; otherwise return ⊥.

   With a single writer whose writes are sequential and m ≥ 2fM + 1, this
   gives the regular(-ish) semantics the paper's algorithms rely on:
   reads that do not overlap a write return the last written value; a
   read overlapping a write (or observing an equivocating writer who
   wrote different values to different replicas) may return ⊥.  Registers
   used by the paper's algorithms are written at most once per slot, so ⊥
   simply means "retry later".

   An [Ack]/[Nak] from [write] reflects the permission check at the
   memories: [Nak] as soon as any responding memory refused (write
   permission revoked there), which the algorithms treat as "a rival took
   over". *)

open Rdma_mem

type handle = { client : Memclient.t; region : string }

let attach ~client ~region = { client; region }

let majority t = Memclient.majority t.client

(* Write to all replicas, wait for a majority of responses; Ack iff all
   received responses were acks. *)
let write t ~reg value =
  Memclient.write_quorum t.client ~region:t.region ~reg value
[@@simlint.write_issuer]

(* Read all replicas, wait for a majority of responses, apply the
   exactly-one-distinct-value rule. *)
let read t ~reg =
  let responses = Memclient.read_quorum t.client ~region:t.region ~reg in
  let values =
    List.filter_map
      (fun (_, r) -> match r with Memory.Read v -> v | Memory.Read_nak -> None)
      responses
  in
  match List.sort_uniq String.compare values with
  | [ v ] -> Some v
  | _ -> None

(* Read and also report whether any replica nak'd (permission trouble is
   interesting to some callers). *)
let read_detailed t ~reg =
  let responses = Memclient.read_quorum t.client ~region:t.region ~reg in
  let naks = List.exists (fun (_, r) -> r = Memory.Read_nak) responses in
  let values =
    List.filter_map
      (fun (_, r) -> match r with Memory.Read v -> v | Memory.Read_nak -> None)
      responses
  in
  let value =
    match List.sort_uniq String.compare values with [ v ] -> Some v | _ -> None
  in
  (value, naks)

(* Quorum read with write-back repair.  When the responding majority
   agrees on exactly one value v, any responding replica that did *not*
   confirm v — it returned ⊥, a divergent value, or nak'd (typically a
   restarted memory whose register is stale) — gets v written back, and
   the repair writes are awaited so a completed call really has restored
   full replication among the live replicas.

   Unlike [read], the sweep does not settle for the first majority: it
   waits up to [grace] for *every* replica.  Under strict ordering the
   distinction is invisible (all live replicas respond at the same
   virtual instant, so the majority snapshot already contains them), but
   a weak ordering model perturbs response times, and a repair sweep
   that only looks at the fastest majority can then miss the rejoined
   replica on every sweep of a bounded serving window — the replica
   loses each quorum race and is never observed, let alone repaired.
   The grace default covers the response spread of the stock weak modes
   (completion-lag lag ≤ 6, reordered-qp window ≤ 4) with margin; a
   crashed replica costs one grace wait per sweep and is skipped.
   Fewer than a majority of responses within [grace] returns ⊥.

   Repair is deliberately *not* folded into [read]: the paper's
   non-equivocating broadcast (Algorithm 2) depends on divergent replicas
   staying observable — a reader that "repaired" an equivocating writer's
   replicas would destroy the evidence.  Callers opt in where lost
   replicas are the expected cause of divergence (crash-model recovery),
   and the writes carry the caller's pid, so repair is only possible
   where the caller holds write permission. *)
let read_repair ?(grace = 10.0) t ~reg =
  let ivars = Memclient.read_all_async t.client ~region:t.region ~reg in
  let responses =
    Rdma_sim.Par.await_k_timeout ivars (Array.length ivars) grace
  in
  if List.length responses < majority t then None
  else
    let values =
      List.filter_map
        (fun (_, r) ->
          match r with Memory.Read v -> v | Memory.Read_nak -> None)
        responses
    in
    match List.sort_uniq String.compare values with
    | [ v ] ->
        let stale =
          List.filter
            (fun (_, r) ->
              match r with
              | Memory.Read (Some v') -> v' <> v
              | Memory.Read None | Memory.Read_nak -> true)
            responses
        in
        let repairs =
          List.map
            (fun (i, _) ->
              Memory.write_async
                (Memclient.mem t.client i)
                ~from:(Memclient.pid t.client) ~region:t.region ~reg v)
            stale
        in
        if ((repairs <> []) [@simlint.allow "F1 the guard checks the repair list is non-empty, not that the \
write-backs landed; SWMR registers are write-once, so a lagged repair \
is indistinguishable from the pre-repair â¥ every reader already \
treats as retry (EXPERIMENTS.md W2)"]) then begin
          ignore (Rdma_sim.Par.await_all (Array.of_list repairs));
          match Memclient.obs t.client with
          | Some obs ->
              Rdma_obs.Obs.count obs "swmr.repairs" (List.length repairs)
          | None -> ()
        end;
        Some v
    | _ -> None

(* Change the permission of the region on every memory, majority-waited. *)
let change_permission t ~perm =
  ignore (Memclient.change_permission_quorum t.client ~region:t.region ~perm)
